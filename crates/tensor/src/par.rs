//! Deterministic fixed-size thread pool for intra-op kernel parallelism.
//!
//! The parallel kernels in this crate ([`crate::matmul_into`],
//! [`crate::im2col3d_into`] and the conv3d lowering built on them) split
//! their *output rows* across workers. Each worker owns a disjoint,
//! contiguous row range and runs exactly the same per-row code as the
//! serial kernel, so the per-element `f32` accumulation order — and
//! therefore every output bit — is independent of the thread count. The
//! pool below only has to guarantee plumbing properties: jobs run exactly
//! once, results come back in submission order, a panicking job is
//! contained (never poisons or deadlocks the pool), and dropping the pool
//! joins every worker.
//!
//! # Job-ring dispatch
//!
//! Each worker owns a private bounded job ring — a long-lived
//! `sync_channel` of capacity [`RING_CAPACITY`] created once at spawn —
//! instead of the shared mutex-guarded injector queue earlier revisions
//! used. Dispatching a row stripe is therefore one enqueue onto the
//! target worker's ring (lock-free array ring buffer in std's channel
//! implementation), with no per-call channel setup and no receiver-lock
//! contention between workers. Batches are stamped with a monotone
//! *generation* from a pool-wide counter; every job echoes its batch
//! generation alongside its result, and the collector verifies the echo,
//! so a result can never be attributed to the wrong batch even with many
//! concurrent callers. Jobs within a batch are assigned round-robin from
//! a rotating start worker, which keeps single-batch GEMM dispatch "one
//! stripe per worker" while spreading concurrent batches across rings.
//! Rings are bounded, so a caller that enqueues more than
//! [`RING_CAPACITY`] jobs per worker simply blocks until the worker
//! drains — backpressure, not failure (tortured in
//! `tests/pool_ring_torture.rs`).
//!
//! The whole crate is `#![forbid(unsafe_code)]`, so the pool cannot lend
//! borrowed slices across threads the way `rayon`'s scoped tasks do.
//! Instead every job is a `'static` closure owning its inputs: callers
//! share packed operands via `Arc` (see [`crate::PackedA`]), and workers
//! return owned output stripes that the caller stitches back together.
//! For the GEMM-shaped workloads this pool exists for, those shares are
//! `O(n²)` against `O(n³)` compute and disappear in the noise.
//!
//! # Example
//!
//! ```
//! use duo_tensor::ThreadPool;
//!
//! let pool = ThreadPool::new(2);
//! let jobs: Vec<_> = (0..8).map(|i| move || i * i).collect();
//! let squares = pool.run(jobs)?;
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! # Ok::<(), duo_tensor::PoolError>(())
//! ```

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Largest thread count the automatic (`intra_op_threads == 0`) setting
/// resolves to; explicit settings may exceed it.
pub const MAX_AUTO_THREADS: usize = 8;

/// Bounded capacity of each worker's private job ring. A batch may
/// enqueue arbitrarily more jobs than this per worker — the dispatcher
/// blocks until the ring drains (backpressure), it never drops or fails.
pub const RING_CAPACITY: usize = 64;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One entry on a worker's job ring: the dispatching batch's generation
/// stamp plus the panic-wrapped work closure.
type RingJob = (u64, Job);

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Error returned by [`ThreadPool::run`] when a job panicked.
///
/// The panic is contained: every other job in the batch still runs to
/// completion, the worker that caught the panic keeps serving its ring,
/// and the pool remains fully usable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Submission index of the first (lowest-index) panicked job.
    pub index: usize,
    /// Panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PoolError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// A fixed-size pool of `std::thread` workers, each draining its own
/// persistent bounded job ring.
///
/// See `DESIGN.md` §6e for the determinism contract and the ring
/// dispatch protocol. Dropping the pool disconnects every ring and joins
/// every worker, so a pool can be created and torn down freely (the
/// property-test suites build pools of many sizes per case).
pub struct ThreadPool {
    rings: Vec<SyncSender<RingJob>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Monotone batch stamp; see [`ThreadPool::generation`].
    generation: AtomicU64,
    /// Rotating ring cursor so concurrent batches start on different
    /// workers instead of all hammering ring 0.
    cursor: AtomicUsize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("generation", &self.generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (`0` is clamped to `1`),
    /// each owning a private job ring of [`RING_CAPACITY`] slots.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut rings = Vec::with_capacity(threads);
        let workers = (0..threads)
            .map(|_| {
                let (tx, rx) = sync_channel::<RingJob>(RING_CAPACITY);
                rings.push(tx);
                std::thread::spawn(move || worker_loop(&rx))
            })
            .collect();
        ThreadPool {
            rings,
            workers,
            threads,
            generation: AtomicU64::new(0),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads (= number of job rings).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of batches dispatched over this pool's rings so far. Each
    /// [`ThreadPool::run`] call claims the next generation; the stamp
    /// travels with every job and is echoed back with its result, where
    /// the collector verifies it.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// True when called from inside a pool worker thread (any pool).
    ///
    /// The parallel kernels consult this to fall back to their serial path
    /// instead of re-entering a pool: a job that blocked on a nested
    /// `run` while every worker was busy running such jobs would deadlock
    /// (and with bounded rings, so could a nested dispatch into a full
    /// ring). Tortured in `tests/pool_ring_torture.rs`.
    pub fn is_worker() -> bool {
        IS_POOL_WORKER.with(Cell::get)
    }

    /// Runs every job and returns their results in submission order.
    ///
    /// Jobs are assigned round-robin onto the per-worker rings starting
    /// from a rotating cursor, so a GEMM-style batch of `threads` stripes
    /// costs exactly one enqueue per worker. Jobs may outnumber workers
    /// (and even exceed [`RING_CAPACITY`] per ring — dispatch then blocks
    /// until the ring drains), and `run` may be called from many threads
    /// at once: each batch routes results over its own channel stamped
    /// with the batch generation, so batches never observe each other.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError`] describing the lowest-index panicked job.
    /// All jobs in the batch have finished (or panicked) by the time this
    /// returns, success or failure.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Result<Vec<T>, PoolError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_with_local(jobs, || ()).0
    }

    /// [`ThreadPool::run`], with the calling thread doing useful work
    /// instead of idling: `jobs` are enqueued onto the rings first, then
    /// `local` runs *on the caller* while the workers chew, and only then
    /// does the caller block draining results. The parallel GEMM hands
    /// its first output stripe to `local`, which both saves one
    /// enqueue/wakeup round-trip and keeps the caller's core busy —
    /// exactly the stripe that would otherwise be computed by a worker
    /// while the caller sleeps. `local` needs no `'static` bound (it
    /// never leaves the caller), so it may borrow the output buffer
    /// directly.
    pub fn run_with_local<T, F, L, R>(
        &self,
        jobs: Vec<F>,
        local: L,
    ) -> (Result<Vec<T>, PoolError>, R)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
        L: FnOnce() -> R,
    {
        let total = jobs.len();
        if total == 0 {
            return (Ok(Vec::new()), local());
        }
        let gen = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let (results_tx, results_rx) = channel::<(usize, u64, Result<T, String>)>();
        for (index, job) in jobs.into_iter().enumerate() {
            let results_tx = results_tx.clone();
            let wrapped: Job = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job)).map_err(|p| panic_message(&*p));
                // The receiver outlives the batch; a send can only fail if
                // `run` itself panicked, in which case nobody is counting.
                let _ = results_tx.send((index, gen, outcome));
            });
            let ring = &self.rings[(start + index) % self.threads];
            ring.send((gen, wrapped)).expect("workers alive while pool not dropped");
        }
        drop(results_tx);

        // The workers are chewing; do the caller's share before blocking.
        let local_result = local();

        // Drain *all* results before reporting, so a failed batch leaves
        // no stragglers behind on any ring.
        let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
        let mut first_panic: Option<PoolError> = None;
        for _ in 0..total {
            let (index, echoed, outcome) =
                results_rx.recv().expect("every job sends exactly once");
            assert_eq!(echoed, gen, "job echoed a foreign batch generation");
            match outcome {
                Ok(value) => slots[index] = Some(value),
                Err(message) => {
                    let better = first_panic.as_ref().is_none_or(|p| index < p.index);
                    if better {
                        first_panic = Some(PoolError { index, message });
                    }
                }
            }
        }
        if let Some(err) = first_panic {
            return (Err(err), local_result);
        }
        let values =
            slots.into_iter().map(|s| s.expect("all slots filled on success")).collect();
        (Ok(values), local_result)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect every ring; each worker finishes the jobs already on
        // its ring, observes the disconnect, and exits.
        self.rings.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Receiver<RingJob>) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    // The ring is this worker's private queue: no receiver lock to take,
    // no contention with siblings. Jobs are panic-wrapped by `run`, so
    // the loop only ends when every sender (the pool) is gone.
    while let Ok((_gen, job)) = rx.recv() {
        job();
    }
}

// ---------------------------------------------------------------------
// Global intra-op pool
// ---------------------------------------------------------------------

struct IntraOp {
    /// Requested thread count; `0` means automatic.
    requested: usize,
    /// Lazily-spawned pool for the resolved count (never built for 1).
    pool: Option<Arc<ThreadPool>>,
}

fn intra_op_state() -> &'static Mutex<IntraOp> {
    static STATE: OnceLock<Mutex<IntraOp>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(IntraOp { requested: 0, pool: None }))
}

fn resolve(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(MAX_AUTO_THREADS)
}

/// Sets the process-wide intra-op thread count used by the parallel
/// kernels ([`crate::matmul_into`], [`crate::im2col3d_into`] and the
/// convolutions lowered onto them). `0` restores the automatic setting
/// (`available_parallelism`, capped at [`MAX_AUTO_THREADS`]).
///
/// Results are **bit-identical at every setting** — this knob trades
/// wall-clock time only, never numerics — so it is safe to tune freely
/// (the serving layer exposes it as `ServeConfig::intra_op_threads`).
/// An existing pool with a different size is torn down once its in-flight
/// work completes; kernels already running keep their pool via `Arc`.
pub fn set_intra_op_threads(threads: usize) {
    let mut state = intra_op_state().lock().expect("intra-op state lock");
    if resolve(state.requested) != resolve(threads) {
        state.pool = None;
    }
    state.requested = threads;
}

/// The resolved intra-op thread count the parallel kernels currently use.
pub fn intra_op_threads() -> usize {
    let state = intra_op_state().lock().expect("intra-op state lock");
    resolve(state.requested)
}

/// The shared intra-op pool, or `None` when the resolved thread count is
/// 1 (serial) or the caller is already inside a pool worker.
pub(crate) fn intra_op_pool() -> Option<Arc<ThreadPool>> {
    if ThreadPool::is_worker() {
        return None;
    }
    let mut state = intra_op_state().lock().expect("intra-op state lock");
    let threads = resolve(state.requested);
    if threads <= 1 {
        return None;
    }
    if state.pool.as_ref().is_none_or(|p| p.threads() != threads) {
        state.pool = Some(Arc::new(ThreadPool::new(threads)));
    }
    state.pool.clone()
}

/// Splits `total` items into at most `parts` contiguous ranges of
/// near-equal size (earlier ranges take the remainder), skipping empty
/// ranges. The partition depends only on `(total, parts)`, which keeps
/// worker assignment deterministic.
pub(crate) fn row_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, total.max(1));
    let base = total / parts;
    let extra = total % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for part in 0..parts {
        let len = base + usize::from(part < extra);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// [`row_ranges`] with every boundary (except the final end) aligned to a
/// multiple of `block`: partitions `total` rows by splitting the
/// `ceil(total / block)` blocks evenly. Workers sharing a packed-A panel
/// (see `matmul.rs`) need stripe starts on micro-kernel block boundaries
/// so no packed block straddles two workers. Like [`row_ranges`], the
/// result is a pure function of `(total, parts, block)`.
pub(crate) fn row_ranges_blocked(
    total: usize,
    parts: usize,
    block: usize,
) -> Vec<std::ops::Range<usize>> {
    debug_assert!(block > 0);
    let blocks = total.div_ceil(block);
    row_ranges(blocks, parts)
        .into_iter()
        .map(|r| r.start * block..(r.end * block).min(total))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..32usize).map(|i| move || i * 2).collect();
        assert_eq!(pool.run(jobs).unwrap(), (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(vec![|| 7]).unwrap(), vec![7]);
    }

    #[test]
    fn empty_batch_is_ok() {
        let pool = ThreadPool::new(2);
        let empty: Vec<fn() -> u8> = Vec::new();
        assert_eq!(pool.run(empty).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn generation_counts_dispatched_batches() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.generation(), 0);
        pool.run(vec![|| 1, || 2]).unwrap();
        assert_eq!(pool.generation(), 1);
        pool.run(vec![|| 3]).unwrap();
        pool.run(Vec::<fn() -> u8>::new()).unwrap(); // empty batches don't dispatch
        assert_eq!(pool.generation(), 2);
    }

    #[test]
    fn panicked_job_reports_lowest_index_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 2 && i != 5, "boom {i}");
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = pool.run(jobs).unwrap_err();
        assert_eq!(err.index, 2);
        assert!(err.message.contains("boom 2"), "{}", err.message);
        // The pool keeps working after containment.
        assert_eq!(pool.run(vec![|| 1, || 2]).unwrap(), vec![1, 2]);
    }

    #[test]
    fn worker_flag_is_set_inside_jobs_only() {
        assert!(!ThreadPool::is_worker());
        let pool = ThreadPool::new(1);
        let flags = pool.run(vec![ThreadPool::is_worker]).unwrap();
        assert_eq!(flags, vec![true]);
        assert!(!ThreadPool::is_worker());
    }

    #[test]
    fn row_ranges_cover_exactly_without_overlap() {
        for total in [0usize, 1, 3, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = row_ranges(total, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous at {total}/{parts}");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, total, "full cover at {total}/{parts}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn blocked_ranges_align_to_block_boundaries() {
        for total in [0usize, 1, 5, 8, 9, 16, 37, 100, 256] {
            for parts in [1usize, 2, 3, 8] {
                for block in [1usize, 4, 8] {
                    let ranges = row_ranges_blocked(total, parts, block);
                    let mut next = 0;
                    for (idx, r) in ranges.iter().enumerate() {
                        assert_eq!(r.start, next, "contiguous at {total}/{parts}/{block}");
                        assert!(!r.is_empty());
                        assert_eq!(r.start % block, 0, "start aligned at {total}/{parts}/{block}");
                        if idx + 1 < ranges.len() {
                            assert_eq!(r.end % block, 0, "interior end aligned");
                        }
                        next = r.end;
                    }
                    assert_eq!(next, total, "full cover at {total}/{parts}/{block}");
                }
            }
        }
    }

    #[test]
    fn intra_op_resolution_defaults_to_auto() {
        // Only observe; mutating the global here would race other tests.
        let n = intra_op_threads();
        assert!(n >= 1);
        assert!(n <= MAX_AUTO_THREADS || n == intra_op_threads());
    }
}
