//! Deterministic fixed-size thread pool for intra-op kernel parallelism.
//!
//! The parallel kernels in this crate ([`crate::matmul_into`],
//! [`crate::im2col3d_into`] and the conv3d lowering built on them) split
//! their *output rows* across workers. Each worker owns a disjoint,
//! contiguous row range and runs exactly the same per-row code as the
//! serial kernel, so the per-element `f32` accumulation order — and
//! therefore every output bit — is independent of the thread count. The
//! pool below only has to guarantee plumbing properties: jobs run exactly
//! once, results come back in submission order, a panicking job is
//! contained (never poisons or deadlocks the pool), and dropping the pool
//! joins every worker.
//!
//! The whole crate is `#![forbid(unsafe_code)]`, so the pool cannot lend
//! borrowed slices across threads the way `rayon`'s scoped tasks do.
//! Instead every job is a `'static` closure owning its inputs: callers
//! copy the operands a worker needs (the kernels share the right-hand
//! side via `Arc` and hand each worker its own row stripe), and workers
//! return owned output stripes that the caller stitches back together.
//! For the GEMM-shaped workloads this pool exists for, those copies are
//! `O(n²)` against `O(n³)` compute and disappear in the noise.
//!
//! # Example
//!
//! ```
//! use duo_tensor::ThreadPool;
//!
//! let pool = ThreadPool::new(2);
//! let jobs: Vec<_> = (0..8).map(|i| move || i * i).collect();
//! let squares = pool.run(jobs)?;
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! # Ok::<(), duo_tensor::PoolError>(())
//! ```

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Largest thread count the automatic (`intra_op_threads == 0`) setting
/// resolves to; explicit settings may exceed it.
pub const MAX_AUTO_THREADS: usize = 8;

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Error returned by [`ThreadPool::run`] when a job panicked.
///
/// The panic is contained: every other job in the batch still runs to
/// completion, the worker that caught the panic keeps serving, and the
/// pool remains fully usable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Submission index of the first (lowest-index) panicked job.
    pub index: usize,
    /// Panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PoolError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

/// A fixed-size pool of `std::thread` workers fed over a shared channel.
///
/// See `DESIGN.md` §6e for the determinism contract. Dropping the
/// pool disconnects the job channel and joins every worker, so a pool can
/// be created and torn down freely (the property-test suites build pools
/// of many sizes per case).
pub struct ThreadPool {
    injector: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (`0` is clamped to `1`).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&rx))
            })
            .collect();
        ThreadPool { injector: Some(tx), workers, threads }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when called from inside a pool worker thread (any pool).
    ///
    /// The parallel kernels consult this to fall back to their serial path
    /// instead of re-entering a pool: a job that blocked on a nested
    /// `run` while every worker was busy running such jobs would deadlock.
    pub fn is_worker() -> bool {
        IS_POOL_WORKER.with(Cell::get)
    }

    /// Runs every job and returns their results in submission order.
    ///
    /// Jobs may outnumber workers arbitrarily (they queue and drain), and
    /// `run` may be called from many threads at once — concurrent batches
    /// interleave in the shared queue but each batch's results are routed
    /// over its own channel, so batches never observe each other.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError`] describing the lowest-index panicked job.
    /// All jobs in the batch have finished (or panicked) by the time this
    /// returns, success or failure.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Result<Vec<T>, PoolError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let total = jobs.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let injector = self.injector.as_ref().expect("pool alive while not dropped");
        let (results_tx, results_rx) = channel::<(usize, Result<T, String>)>();
        for (index, job) in jobs.into_iter().enumerate() {
            let results_tx = results_tx.clone();
            let wrapped: Job = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job)).map_err(|p| panic_message(&*p));
                // The receiver outlives the batch; a send can only fail if
                // `run` itself panicked, in which case nobody is counting.
                let _ = results_tx.send((index, outcome));
            });
            injector.send(wrapped).expect("workers alive while pool not dropped");
        }
        drop(results_tx);

        // Drain *all* results before reporting, so a failed batch leaves
        // no stragglers behind in the queue.
        let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
        let mut first_panic: Option<PoolError> = None;
        for _ in 0..total {
            let (index, outcome) = results_rx.recv().expect("every job sends exactly once");
            match outcome {
                Ok(value) => slots[index] = Some(value),
                Err(message) => {
                    let better = first_panic.as_ref().is_none_or(|p| index < p.index);
                    if better {
                        first_panic = Some(PoolError { index, message });
                    }
                }
            }
        }
        if let Some(err) = first_panic {
            return Err(err);
        }
        Ok(slots.into_iter().map(|s| s.expect("all slots filled on success")).collect())
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the queue; each worker finishes its current job,
        // drains nothing further, and exits.
        self.injector = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        // Hold the receiver lock only for the blocking take, never while
        // running a job. Jobs are panic-wrapped by `run`, so the lock is
        // never poisoned.
        let job = match rx.lock().expect("job queue lock").recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        job();
    }
}

// ---------------------------------------------------------------------
// Global intra-op pool
// ---------------------------------------------------------------------

struct IntraOp {
    /// Requested thread count; `0` means automatic.
    requested: usize,
    /// Lazily-spawned pool for the resolved count (never built for 1).
    pool: Option<Arc<ThreadPool>>,
}

fn intra_op_state() -> &'static Mutex<IntraOp> {
    static STATE: OnceLock<Mutex<IntraOp>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(IntraOp { requested: 0, pool: None }))
}

fn resolve(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(MAX_AUTO_THREADS)
}

/// Sets the process-wide intra-op thread count used by the parallel
/// kernels ([`crate::matmul_into`], [`crate::im2col3d_into`] and the
/// convolutions lowered onto them). `0` restores the automatic setting
/// (`available_parallelism`, capped at [`MAX_AUTO_THREADS`]).
///
/// Results are **bit-identical at every setting** — this knob trades
/// wall-clock time only, never numerics — so it is safe to tune freely
/// (the serving layer exposes it as `ServeConfig::intra_op_threads`).
/// An existing pool with a different size is torn down once its in-flight
/// work completes; kernels already running keep their pool via `Arc`.
pub fn set_intra_op_threads(threads: usize) {
    let mut state = intra_op_state().lock().expect("intra-op state lock");
    if resolve(state.requested) != resolve(threads) {
        state.pool = None;
    }
    state.requested = threads;
}

/// The resolved intra-op thread count the parallel kernels currently use.
pub fn intra_op_threads() -> usize {
    let state = intra_op_state().lock().expect("intra-op state lock");
    resolve(state.requested)
}

/// The shared intra-op pool, or `None` when the resolved thread count is
/// 1 (serial) or the caller is already inside a pool worker.
pub(crate) fn intra_op_pool() -> Option<Arc<ThreadPool>> {
    if ThreadPool::is_worker() {
        return None;
    }
    let mut state = intra_op_state().lock().expect("intra-op state lock");
    let threads = resolve(state.requested);
    if threads <= 1 {
        return None;
    }
    if state.pool.as_ref().is_none_or(|p| p.threads() != threads) {
        state.pool = Some(Arc::new(ThreadPool::new(threads)));
    }
    state.pool.clone()
}

/// Splits `total` items into at most `parts` contiguous ranges of
/// near-equal size (earlier ranges take the remainder), skipping empty
/// ranges. The partition depends only on `(total, parts)`, which keeps
/// worker assignment deterministic.
pub(crate) fn row_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, total.max(1));
    let base = total / parts;
    let extra = total % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for part in 0..parts {
        let len = base + usize::from(part < extra);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<_> = (0..32usize).map(|i| move || i * 2).collect();
        assert_eq!(pool.run(jobs).unwrap(), (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(vec![|| 7]).unwrap(), vec![7]);
    }

    #[test]
    fn empty_batch_is_ok() {
        let pool = ThreadPool::new(2);
        let empty: Vec<fn() -> u8> = Vec::new();
        assert_eq!(pool.run(empty).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn panicked_job_reports_lowest_index_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 2 && i != 5, "boom {i}");
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = pool.run(jobs).unwrap_err();
        assert_eq!(err.index, 2);
        assert!(err.message.contains("boom 2"), "{}", err.message);
        // The pool keeps working after containment.
        assert_eq!(pool.run(vec![|| 1, || 2]).unwrap(), vec![1, 2]);
    }

    #[test]
    fn worker_flag_is_set_inside_jobs_only() {
        assert!(!ThreadPool::is_worker());
        let pool = ThreadPool::new(1);
        let flags = pool.run(vec![ThreadPool::is_worker]).unwrap();
        assert_eq!(flags, vec![true]);
        assert!(!ThreadPool::is_worker());
    }

    #[test]
    fn row_ranges_cover_exactly_without_overlap() {
        for total in [0usize, 1, 3, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = row_ranges(total, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous at {total}/{parts}");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, total, "full cover at {total}/{parts}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn intra_op_resolution_defaults_to_auto() {
        // Only observe; mutating the global here would race other tests.
        let n = intra_op_threads();
        assert!(n >= 1);
        assert!(n <= MAX_AUTO_THREADS || n == intra_op_threads());
    }
}
