//! 3-D pooling kernels (max and average) with explicit backward passes.
//!
//! The video backbones in `duo-models` downsample with pooling; backward
//! passes here return input gradients so the attack crates can differentiate
//! end-to-end through any backbone.

use crate::{Tensor, TensorError};

/// Geometry of a 3-D pooling window over `[C, T, H, W]` inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool3dSpec {
    /// Window extent along time.
    pub kt: usize,
    /// Window height.
    pub kh: usize,
    /// Window width.
    pub kw: usize,
    /// Stride along time.
    pub st: usize,
    /// Stride along height.
    pub sh: usize,
    /// Stride along width.
    pub sw: usize,
}

crate::impl_to_json!(struct Pool3dSpec { kt, kh, kw, st, sh, sw });

impl Pool3dSpec {
    /// A cubic window of side `k` with stride `k` (non-overlapping).
    pub fn cubic(k: usize) -> Self {
        Pool3dSpec { kt: k, kh: k, kw: k, st: k, sh: k, sw: k }
    }

    /// Spatial-only pooling: window `1 x k x k`, stride `1 x k x k`.
    pub fn spatial(k: usize) -> Self {
        Pool3dSpec { kt: 1, kh: k, kw: k, st: 1, sh: k, sw: k }
    }

    /// Output size for a `[C, t, h, w]` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the window does not fit.
    pub fn output_thw(&self, t: usize, h: usize, w: usize) -> Result<(usize, usize, usize), TensorError> {
        if self.kt == 0 || self.kh == 0 || self.kw == 0 || self.st == 0 || self.sh == 0 || self.sw == 0 {
            return Err(TensorError::InvalidGeometry("pool window/stride must be positive".into()));
        }
        if t < self.kt || h < self.kh || w < self.kw {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {}x{}x{} larger than input {}x{}x{}",
                self.kt, self.kh, self.kw, t, h, w
            )));
        }
        Ok(((t - self.kt) / self.st + 1, (h - self.kh) / self.sh + 1, (w - self.kw) / self.sw + 1))
    }
}

fn check_input(input: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize), TensorError> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op });
    }
    Ok((input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]))
}

/// Max pooling over a `[C, T, H, W]` input.
///
/// Returns the pooled tensor and the flat index of each window's argmax
/// (needed by [`max_pool3d_backward`]).
///
/// # Errors
///
/// Returns an error for rank mismatches or invalid geometry.
pub fn max_pool3d(input: &Tensor, spec: &Pool3dSpec) -> Result<(Tensor, Vec<usize>), TensorError> {
    let (c, t, h, w) = check_input(input, "max_pool3d")?;
    let (ot, oh, ow) = spec.output_thw(t, h, w)?;
    let mut out = Tensor::zeros(&[c, ot, oh, ow]);
    let mut argmax = vec![0usize; c * ot * oh * ow];
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    for ch in 0..c {
        for oz in 0..ot {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for kz in 0..spec.kt {
                        for ky in 0..spec.kh {
                            for kx in 0..spec.kw {
                                let z = oz * spec.st + kz;
                                let y = oy * spec.sh + ky;
                                let x = ox * spec.sw + kx;
                                let idx = ((ch * t + z) * h + y) * w + x;
                                if iv[idx] > best {
                                    best = iv[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                    }
                    let o = ((ch * ot + oz) * oh + oy) * ow + ox;
                    ov[o] = best;
                    argmax[o] = best_idx;
                }
            }
        }
    }
    Ok((out, argmax))
}

/// Backward pass of [`max_pool3d`]: routes each output gradient to the
/// input position that won the max.
///
/// # Errors
///
/// Returns an error if `grad_out` length disagrees with `argmax`.
pub fn max_pool3d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor, TensorError> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::LengthMismatch { expected: argmax.len(), actual: grad_out.len() });
    }
    let mut grad_in = Tensor::zeros(input_dims);
    let gi = grad_in.as_mut_slice();
    for (g, &idx) in grad_out.as_slice().iter().zip(argmax) {
        gi[idx] += g;
    }
    Ok(grad_in)
}

/// Average pooling over a `[C, T, H, W]` input.
///
/// # Errors
///
/// Returns an error for rank mismatches or invalid geometry.
pub fn avg_pool3d(input: &Tensor, spec: &Pool3dSpec) -> Result<Tensor, TensorError> {
    let (c, t, h, w) = check_input(input, "avg_pool3d")?;
    let (ot, oh, ow) = spec.output_thw(t, h, w)?;
    let denom = (spec.kt * spec.kh * spec.kw) as f32;
    let mut out = Tensor::zeros(&[c, ot, oh, ow]);
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    for ch in 0..c {
        for oz in 0..ot {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut s = 0.0;
                    for kz in 0..spec.kt {
                        for ky in 0..spec.kh {
                            for kx in 0..spec.kw {
                                let z = oz * spec.st + kz;
                                let y = oy * spec.sh + ky;
                                let x = ox * spec.sw + kx;
                                s += iv[((ch * t + z) * h + y) * w + x];
                            }
                        }
                    }
                    ov[((ch * ot + oz) * oh + oy) * ow + ox] = s / denom;
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass of [`avg_pool3d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or invalid geometry.
pub fn avg_pool3d_backward(
    grad_out: &Tensor,
    spec: &Pool3dSpec,
    input_dims: &[usize],
) -> Result<Tensor, TensorError> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
            op: "avg_pool3d_backward",
        });
    }
    let (c, t, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let (ot, oh, ow) = spec.output_thw(t, h, w)?;
    if grad_out.dims() != [c, ot, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.dims().to_vec(),
            rhs: vec![c, ot, oh, ow],
            op: "avg_pool3d_backward",
        });
    }
    let denom = (spec.kt * spec.kh * spec.kw) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    let gv = grad_out.as_slice();
    let gi = grad_in.as_mut_slice();
    for ch in 0..c {
        for oz in 0..ot {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gv[((ch * ot + oz) * oh + oy) * ow + ox] / denom;
                    for kz in 0..spec.kt {
                        for ky in 0..spec.kh {
                            for kx in 0..spec.kw {
                                let z = oz * spec.st + kz;
                                let y = oy * spec.sh + ky;
                                let x = ox * spec.sw + kx;
                                gi[((ch * t + z) * h + y) * w + x] += g;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    #[test]
    fn max_pool_picks_window_maxima() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, // t=0 row-major 2x2
                5.0, 6.0, 7.0, 8.0, // t=1
            ],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let (out, argmax) = max_pool3d(&input, &Pool3dSpec::cubic(2)).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1, 1]);
        assert_eq!(out.as_slice(), &[8.0]);
        assert_eq!(argmax, vec![7]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let (_, argmax) = max_pool3d(&input, &Pool3dSpec::spatial(2)).unwrap();
        let grad_out = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let grad_in = max_pool3d_backward(&grad_out, &argmax, &[1, 1, 2, 2]).unwrap();
        assert_eq!(grad_in.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_averages_windows() {
        let input = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[1, 1, 2, 2]).unwrap();
        let out = avg_pool3d(&input, &Pool3dSpec::spatial(2)).unwrap();
        assert_eq!(out.as_slice(), &[5.0]);
    }

    #[test]
    fn avg_pool_backward_is_adjoint() {
        let mut rng = Rng64::new(31);
        let spec = Pool3dSpec { kt: 2, kh: 2, kw: 2, st: 2, sh: 2, sw: 2 };
        let x = Tensor::randn(&[2, 4, 4, 4], 1.0, rng.as_rng());
        let y = avg_pool3d(&x, &spec).unwrap();
        let g = Tensor::randn(y.dims(), 1.0, rng.as_rng());
        let lhs = y.dot(&g).unwrap();
        let gx = avg_pool3d_backward(&g, &spec, &[2, 4, 4, 4]).unwrap();
        let rhs = x.dot(&gx).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn rejects_oversized_windows() {
        let input = Tensor::zeros(&[1, 2, 2, 2]);
        assert!(max_pool3d(&input, &Pool3dSpec::cubic(3)).is_err());
        assert!(avg_pool3d(&input, &Pool3dSpec::cubic(3)).is_err());
    }

    #[test]
    fn strided_pool_geometry() {
        let spec = Pool3dSpec { kt: 1, kh: 3, kw: 3, st: 1, sh: 2, sw: 2 };
        assert_eq!(spec.output_thw(4, 7, 7).unwrap(), (4, 3, 3));
    }
}
