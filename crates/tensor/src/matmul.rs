//! Blocked, optionally multi-threaded matrix multiplication.
//!
//! The convolution kernels in this crate lower to matrix multiplication
//! via im2col, so `matmul` dominates the runtime of every model
//! forward/backward pass in the workspace. The implementation is a
//! cache-blocked GEMM: the right-hand side is packed one `KC × NC` panel
//! at a time into a contiguous buffer, and a hand-unrolled `MR × NR`
//! register-tiled micro-kernel sweeps 4 output rows against that panel.
//! Large products additionally split their *output rows* across the
//! intra-op thread pool ([`crate::set_intra_op_threads`]).
//!
//! # Determinism contract
//!
//! Every path through this module — the 4-row micro-kernel, the 1-row
//! remainder kernel, the scalar column tail, serial or parallel — builds
//! a given output element `out[i][j]` by the *same* float program: start
//! from `0.0` and add `a[i][p] * b[p][j]` in strictly increasing `p`
//! order (panelled as `pc`-major, identical for every path). Workers own
//! disjoint row ranges and never share accumulators, so the result is
//! bit-identical (`f32::to_bits`) at any thread count, any row
//! partitioning, and any tile remainder. The property suite in
//! `tests/kernel_bit_identity.rs` enforces this contract.

use std::sync::Arc;

use crate::par::{intra_op_pool, row_ranges, ThreadPool};
use crate::{Tensor, TensorError};

/// Rows swept together by the register-tiled micro-kernel.
const MR: usize = 4;
/// Columns held in the accumulator tile.
const NR: usize = 16;
/// Depth (k) extent of one packed panel.
const KC: usize = 256;
/// Width (n) extent of one packed panel.
const NC: usize = 1024;

/// `m·k·n` volume below which [`matmul_into`] stays serial: at small
/// sizes the per-job operand copies and pool round-trip cost more than
/// the multiply itself. 64³ is the empirical break-even on one core.
const PAR_MIN_VOLUME: usize = 1 << 18;

fn validate(a: &Tensor, b: &Tensor, out: &Tensor) -> Result<(usize, usize, usize), TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: a.rank(), op: "matmul" });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: b.rank(), op: "matmul" });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    if out.dims() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            lhs: out.dims().to_vec(),
            rhs: vec![m, n],
            op: "matmul_into(out)",
        });
    }
    Ok((m, k, n))
}

/// Multiplies two rank-2 tensors, writing into a preallocated output.
///
/// `out` must have shape `[a.rows, b.cols]`. Prefer this over
/// [`Tensor::matmul`] inside hot loops to avoid reallocation. Products
/// large enough to amortize the dispatch run on the intra-op pool
/// ([`crate::set_intra_op_threads`]); the result is bit-identical to
/// [`matmul_into_serial`] either way.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if any operand is not rank 2,
/// [`TensorError::ShapeMismatch`] if the dimensions are incompatible, and
/// [`TensorError::Parallel`] if a pool worker panicked (not reachable
/// from this crate's kernels).
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    if m.saturating_mul(k).saturating_mul(n) >= PAR_MIN_VOLUME {
        if let Some(pool) = intra_op_pool() {
            return gemm_parallel(a.as_slice(), b.as_slice(), out.as_mut_slice(), m, k, n, &pool);
        }
    }
    gemm_rows(a.as_slice(), b.as_slice(), out.as_mut_slice(), m, k, n);
    Ok(())
}

/// [`matmul_into`] forced onto the blocked serial kernel, regardless of
/// the intra-op setting. This is the reference side of the bit-identity
/// contract the parallel path is tested against.
///
/// # Errors
///
/// Same shape/rank errors as [`matmul_into`].
pub fn matmul_into_serial(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    gemm_rows(a.as_slice(), b.as_slice(), out.as_mut_slice(), m, k, n);
    Ok(())
}

/// [`matmul_into`] on an explicit [`ThreadPool`], always taking the
/// row-partitioned parallel path (no size threshold). Property tests use
/// this to pin the thread count per case without mutating the global
/// intra-op setting.
///
/// # Errors
///
/// Same as [`matmul_into`]; additionally [`TensorError::Parallel`] if a
/// job panicked.
pub fn matmul_into_with(
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
    pool: &ThreadPool,
) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    gemm_parallel(a.as_slice(), b.as_slice(), out.as_mut_slice(), m, k, n, pool)
}

/// The pre-blocking naive i-k-j kernel, kept as the benchmark baseline
/// (`benches/gemm.rs` reports blocked/threaded speedups against it) and
/// as an independent oracle for the property tests.
///
/// # Errors
///
/// Same shape/rank errors as [`matmul_into`].
pub fn matmul_into_reference(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    ov.fill(0.0);
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut ov[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for (o, &bpn) in orow.iter_mut().zip(brow) {
                *o += aip * bpn;
            }
        }
    }
    Ok(())
}

/// Multiplies two rank-2 tensors, allocating the output.
///
/// # Errors
///
/// Same as [`matmul_into`].
pub(crate) fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[a.dims()[0], b.dims()[1]]);
    matmul_into(a, b, &mut out)?;
    Ok(out)
}

/// Row-partitioned parallel GEMM. Each worker receives an owned copy of
/// its A row stripe, shares B via `Arc`, and returns an owned output
/// stripe computed by the same [`gemm_rows`] kernel the serial path runs;
/// the caller stitches stripes back in range order. Copies are
/// `O(mk + kn + mn)` against `O(mkn)` compute. Disjoint rows + identical
/// per-row code ⇒ bit-identical to serial at any partitioning.
fn gemm_parallel(
    av: &[f32],
    bv: &[f32],
    ov: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &ThreadPool,
) -> Result<(), TensorError> {
    let ranges = row_ranges(m, pool.threads());
    if ranges.len() <= 1 {
        gemm_rows(av, bv, ov, m, k, n);
        return Ok(());
    }
    let b_shared: Arc<Vec<f32>> = Arc::new(bv.to_vec());
    let jobs: Vec<_> = ranges
        .iter()
        .map(|r| {
            let a_stripe = av[r.start * k..r.end * k].to_vec();
            let b_shared = Arc::clone(&b_shared);
            let rows = r.len();
            move || {
                let mut stripe = vec![0.0f32; rows * n];
                gemm_rows(&a_stripe, &b_shared, &mut stripe, rows, k, n);
                stripe
            }
        })
        .collect();
    let stripes = pool
        .run(jobs)
        .map_err(|e| TensorError::Parallel { op: "matmul_into", message: e.to_string() })?;
    for (r, stripe) in ranges.iter().zip(stripes) {
        ov[r.start * n..r.end * n].copy_from_slice(&stripe);
    }
    Ok(())
}

/// Blocked GEMM over a contiguous block of output rows: `ov[rows × n] =
/// av[rows × k] · bv[k × n]`. This single kernel body serves the serial
/// path (all rows) and every worker stripe, which is what makes the
/// thread-count independence argument a one-liner.
fn gemm_rows(av: &[f32], bv: &[f32], ov: &mut [f32], rows: usize, k: usize, n: usize) {
    ov.fill(0.0);
    if rows == 0 || k == 0 || n == 0 {
        return;
    }
    let mut panel = vec![0.0f32; KC.min(k) * NC.min(n)];
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            for p in 0..kc {
                let src = (pc + p) * n + jc;
                panel[p * nc..p * nc + nc].copy_from_slice(&bv[src..src + nc]);
            }
            let mut i = 0;
            while i + MR <= rows {
                micro_4(av, ov, k, n, i, pc, kc, jc, nc, &panel);
                i += MR;
            }
            while i < rows {
                micro_1(av, ov, k, n, i, pc, kc, jc, nc, &panel);
                i += 1;
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Register-tiled micro-kernel: 4 output rows × one packed panel. The
/// `[[f32; NR]; MR]` accumulator tile is loaded from `ov` (carrying the
/// partial sum of earlier `pc` panels), updated in increasing-`p` order,
/// and stored back. Remainder columns past the last full `NR` tile use a
/// scalar loop with the identical per-element accumulation order. The
/// 4-row body is deliberately hand-unrolled: a generic `for r in 0..MR`
/// formulation measurably defeats the autovectorizer.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_4(
    av: &[f32],
    ov: &mut [f32],
    k: usize,
    n: usize,
    i: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    panel: &[f32],
) {
    let a0 = &av[i * k + pc..i * k + pc + kc];
    let a1 = &av[(i + 1) * k + pc..(i + 1) * k + pc + kc];
    let a2 = &av[(i + 2) * k + pc..(i + 2) * k + pc + kc];
    let a3 = &av[(i + 3) * k + pc..(i + 3) * k + pc + kc];
    let mut j = 0;
    while j + NR <= nc {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, tile) in acc.iter_mut().enumerate() {
            let base = (i + r) * n + jc + j;
            tile.copy_from_slice(&ov[base..base + NR]);
        }
        for p in 0..kc {
            let br = &panel[p * nc + j..p * nc + j + NR];
            let x0 = a0[p];
            let x1 = a1[p];
            let x2 = a2[p];
            let x3 = a3[p];
            for (jj, &bval) in br.iter().enumerate() {
                acc[0][jj] += x0 * bval;
                acc[1][jj] += x1 * bval;
                acc[2][jj] += x2 * bval;
                acc[3][jj] += x3 * bval;
            }
        }
        for (r, tile) in acc.iter().enumerate() {
            let base = (i + r) * n + jc + j;
            ov[base..base + NR].copy_from_slice(tile);
        }
        j += NR;
    }
    while j < nc {
        for (r, ar) in [a0, a1, a2, a3].into_iter().enumerate() {
            let idx = (i + r) * n + jc + j;
            let mut s = ov[idx];
            for (p, &x) in ar.iter().enumerate() {
                s += x * panel[p * nc + j];
            }
            ov[idx] = s;
        }
        j += 1;
    }
}

/// Single-row remainder kernel; per-element float program identical to
/// [`micro_4`], so remainder rows land on the same bits no matter where
/// a partition boundary falls.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_1(
    av: &[f32],
    ov: &mut [f32],
    k: usize,
    n: usize,
    i: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    panel: &[f32],
) {
    let a0 = &av[i * k + pc..i * k + pc + kc];
    let mut j = 0;
    while j + NR <= nc {
        let base = i * n + jc + j;
        let mut acc = [0.0f32; NR];
        acc.copy_from_slice(&ov[base..base + NR]);
        for (p, &x0) in a0.iter().enumerate() {
            let br = &panel[p * nc + j..p * nc + j + NR];
            for (jj, &bval) in br.iter().enumerate() {
                acc[jj] += x0 * bval;
            }
        }
        ov[base..base + NR].copy_from_slice(&acc);
        j += NR;
    }
    while j < nc {
        let idx = i * n + jc + j;
        let mut s = ov[idx];
        for (p, &x0) in a0.iter().enumerate() {
            s += x0 * panel[p * nc + j];
        }
        ov[idx] = s;
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
                }
                out.as_mut_slice()[i * n + j] = s;
            }
        }
        out
    }

    #[test]
    fn matches_hand_computed_2x2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::new(11);
        let a = Tensor::randn(&[4, 4], 1.0, rng.as_rng());
        let c = a.matmul(&Tensor::eye(4)).unwrap();
        for (x, y) in a.as_slice().iter().zip(c.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matches_naive_on_rectangular_inputs() {
        let mut rng = Rng64::new(12);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (7, 4, 9), (16, 16, 16), (21, 19, 35)] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let fast = a.matmul(&b).unwrap();
            let slow = naive(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "mismatch at ({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn blocked_kernel_is_bitwise_naive_per_element() {
        // Both kernels sum a[i][p]·b[p][j] from 0.0 in increasing-p order,
        // so they must agree bit-for-bit, tile remainders included.
        let mut rng = Rng64::new(14);
        for &(m, k, n) in &[(5, 7, 3), (4, 16, 16), (9, 300, 21), (17, 33, 40)] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let mut blocked = Tensor::zeros(&[m, n]);
            matmul_into_serial(&a, &b, &mut blocked).unwrap();
            let slow = naive(&a, &b);
            assert_eq!(blocked.as_slice(), slow.as_slice(), "({m},{k},{n})");
        }
    }

    #[test]
    fn explicit_pool_matches_serial_bitwise() {
        let mut rng = Rng64::new(15);
        let pool = ThreadPool::new(3);
        for &(m, k, n) in &[(1, 4, 4), (6, 20, 18), (23, 17, 31)] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let mut serial = Tensor::zeros(&[m, n]);
            let mut parallel = Tensor::zeros(&[m, n]);
            matmul_into_serial(&a, &b, &mut serial).unwrap();
            matmul_into_with(&a, &b, &mut parallel, &pool).unwrap();
            assert_eq!(serial.as_slice(), parallel.as_slice(), "({m},{k},{n})");
        }
    }

    #[test]
    fn rejects_incompatible_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn sparse_lhs_rows_are_skipped_correctly() {
        // `matmul_into_reference` skips zero entries of `a`; the blocked
        // kernel performs them. Both must land on the same values for the
        // mostly-zero masked attack tensors.
        let mut rng = Rng64::new(13);
        let mut a = Tensor::zeros(&[5, 8]);
        for i in [0usize, 9, 17, 33] {
            a.as_mut_slice()[i] = rng.normal();
        }
        let b = Tensor::randn(&[8, 6], 1.0, rng.as_rng());
        let fast = a.matmul(&b).unwrap();
        let mut reference = Tensor::zeros(&[5, 6]);
        matmul_into_reference(&a, &b, &mut reference).unwrap();
        assert_eq!(fast.as_slice(), reference.as_slice());
        let slow = naive(&a, &b);
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn matmul_into_overwrites_stale_output() {
        let a = Tensor::eye(2);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let mut out = Tensor::full(&[2, 2], 99.0);
        matmul_into(&a, &b, &mut out).unwrap();
        assert_eq!(out.as_slice(), b.as_slice(), "previous contents must not leak");
    }

    #[test]
    fn parallel_path_overwrites_stale_output() {
        let mut rng = Rng64::new(16);
        let pool = ThreadPool::new(2);
        let a = Tensor::randn(&[7, 5], 1.0, rng.as_rng());
        let b = Tensor::randn(&[5, 9], 1.0, rng.as_rng());
        let mut fresh = Tensor::zeros(&[7, 9]);
        let mut stale = Tensor::full(&[7, 9], -3.5);
        matmul_into_with(&a, &b, &mut fresh, &pool).unwrap();
        matmul_into_with(&a, &b, &mut stale, &pool).unwrap();
        assert_eq!(fresh.as_slice(), stale.as_slice());
    }

    #[test]
    fn matmul_into_validates_out_shape() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let mut bad = Tensor::zeros(&[2, 3]);
        assert!(matmul_into(&a, &b, &mut bad).is_err());
        let pool = ThreadPool::new(2);
        assert!(matmul_into_with(&a, &b, &mut bad, &pool).is_err());
        assert!(matmul_into_serial(&a, &b, &mut bad).is_err());
        assert!(matmul_into_reference(&a, &b, &mut bad).is_err());
        let mut good = Tensor::zeros(&[2, 4]);
        assert!(matmul_into(&a, &b, &mut good).is_ok());
    }

    #[test]
    fn degenerate_inner_dimension_zeroes_output() {
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 2]);
        let mut out = Tensor::full(&[3, 2], 5.0);
        matmul_into(&a, &b, &mut out).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }
}
