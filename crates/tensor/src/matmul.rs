//! Blocked, optionally multi-threaded matrix multiplication.
//!
//! The convolution kernels in this crate lower to matrix multiplication
//! via im2col, so `matmul` dominates the runtime of every model
//! forward/backward pass in the workspace. The fast path is a
//! cache-blocked GEMM with packed operands on both sides: A is packed
//! once per call into 8-row interleaved blocks ([`PackedA`], reusable
//! across calls that share a left operand), B is packed once into
//! [`NR2`]-column depth-major strips ([`PackedB`]), and a hand-unrolled
//! `8 × NR2` two-accumulator micro-kernel ([`micro_8w`], with
//! [`micro_8n`] for the narrow final strip) sweeps 8 output rows across
//! the full depth in one register pass. Remainder rows (fewer than 8 at
//! the bottom of a stripe) fall back to the original 4-row/1-row
//! kernels. Bias addition is fused into the final store ([`gemm_bias`])
//! instead of costing a second pass over the output. Large products
//! additionally split their *output rows* across the intra-op thread
//! pool ([`crate::set_intra_op_threads`]) on packed-block boundaries,
//! reusing one packed A/B pair across every stripe; the caller computes
//! the first stripe inline while the ring workers chew the rest.
//!
//! # Determinism contract
//!
//! Every path through this module — the 8-row packed micro-kernel, the
//! 4-row and 1-row fallback kernels, the scalar column tail, serial or
//! parallel, bias fused or not — builds a given output element
//! `out[i][j]` by the *same* float program: start from `0.0`, fold in
//! `a[i][p].mul_add(b[p][j], acc)` (one IEEE fused multiply-add, single
//! rounding per step) in strictly increasing `p` order (panelled as
//! `pc`-major, identical for every path), then add `bias[j]` last if a
//! bias is given. The FMA order is *fixed*: no kernel may re-associate,
//! split a fused step into mul-then-add, or hoist the bias. Packing only
//! relocates operand bytes; it never reorders the accumulation. Workers
//! own disjoint row ranges aligned to packed 8-row blocks and never
//! share accumulators, so the result is bit-identical (`f32::to_bits`)
//! at any thread count, any row partitioning, and any tile remainder —
//! and `gemm_bias` is bit-equal to `gemm` followed by a bias loop,
//! because `f32` addition of the same operands in the same order is one
//! program. The property suite in `tests/kernel_bit_identity.rs`
//! enforces this contract.

use std::sync::Arc;

use crate::par::{intra_op_pool, row_ranges_blocked, ThreadPool};
use crate::{Tensor, TensorError};

/// Rows swept together by the fallback register-tiled micro-kernel.
const MR: usize = 4;
/// Rows swept together by the wide packed micro-kernel; also the A
/// packing block height and the parallel stripe alignment.
const MR8: usize = 8;
/// Column width of the wide micro-kernel's main tile and of the packed B
/// strips (two NR-wide accumulator pairs).
const NR2: usize = 2 * NR;
/// Columns held in the accumulator tile.
const NR: usize = 16;
/// Depth (k) extent of one packed panel.
const KC: usize = 256;
/// Width (n) extent of one packed panel.
const NC: usize = 1024;

/// `m·k·n` volume below which [`matmul_into`] stays serial: at small
/// sizes the per-job operand shares and pool round-trip cost more than
/// the multiply itself. 64³ is the empirical break-even on one core.
const PAR_MIN_VOLUME: usize = 1 << 18;

/// `m·k·n` volume below which the serial path skips operand packing and
/// runs the legacy [`gemm_rows`] kernel directly: packing A and B is an
/// `O(mk + kn)` tax that tiny products never pay back.
const FAST_MIN_VOLUME: usize = 1 << 13;

fn validate(a: &Tensor, b: &Tensor, out: &Tensor) -> Result<(usize, usize, usize), TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: a.rank(), op: "matmul" });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: b.rank(), op: "matmul" });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    if out.dims() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            lhs: out.dims().to_vec(),
            rhs: vec![m, n],
            op: "matmul_into(out)",
        });
    }
    Ok((m, k, n))
}

fn validate_bias(bias: &Tensor, n: usize) -> Result<(), TensorError> {
    if bias.rank() != 1 {
        return Err(TensorError::RankMismatch { expected: 1, actual: bias.rank(), op: "gemm_bias" });
    }
    if bias.dims()[0] != n {
        return Err(TensorError::ShapeMismatch {
            lhs: bias.dims().to_vec(),
            rhs: vec![n],
            op: "gemm_bias(bias)",
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Workspace buffer cache
// ---------------------------------------------------------------------

/// Process-wide recycling bin for the transient `Vec<f32>` workspaces the
/// packed GEMM path burns through (packed A, packed B, worker output
/// stripes). Serving workloads issue the same shapes call after call;
/// without reuse every call mmaps fresh pages and pays the page-fault
/// tax again — which on a single-core box is a large slice of the whole
/// parallel dispatch overhead. Buffers handed out by [`take`] carry
/// arbitrary stale contents; every consumer in this module fully
/// overwrites its workspace (packers write all `len` elements, stripe
/// outputs are written by the kernels' first-panel stores or explicitly
/// zeroed), so no value ever leaks between calls.
mod workspace {
    use std::sync::Mutex;

    /// Max cached buffers and max floats per cached buffer (16 MiB) —
    /// bounds worst-case idle retention at ~256 MiB while covering every
    /// shape the serving/attack workloads use.
    const MAX_ENTRIES: usize = 16;
    const MAX_FLOATS: usize = 1 << 22;

    static BIN: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());

    /// Returns a buffer of exactly `len` elements with unspecified
    /// contents (best-fitting cached allocation, else fresh).
    pub(super) fn take(len: usize) -> Vec<f32> {
        let mut bin = BIN.lock().expect("workspace bin lock");
        // Smallest cached buffer whose capacity already covers `len`;
        // falls back to the largest one (realloc grows it in place-ish)
        // or a fresh Vec.
        let mut pick: Option<usize> = None;
        for (idx, buf) in bin.iter().enumerate() {
            if buf.capacity() >= len {
                let better = pick.is_none_or(|p: usize| buf.capacity() < bin[p].capacity());
                if better {
                    pick = Some(idx);
                }
            }
        }
        let mut buf = match pick {
            Some(idx) => bin.swap_remove(idx),
            None => Vec::new(),
        };
        drop(bin);
        if buf.len() >= len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Returns a workspace to the bin for reuse (oversized or surplus
    /// buffers are simply dropped).
    pub(super) fn give(buf: Vec<f32>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_FLOATS {
            return;
        }
        let mut bin = BIN.lock().expect("workspace bin lock");
        if bin.len() < MAX_ENTRIES {
            bin.push(buf);
        }
    }
}

// ---------------------------------------------------------------------
// Packed operands
// ---------------------------------------------------------------------

/// The left GEMM operand packed for the wide micro-kernel, reusable
/// across calls ([`gemm_packed`] / [`gemm_bias_packed`]).
///
/// Layout: rows are grouped into blocks of 8 (`MR8`); within block `b`,
/// element `a[8b + r][p]` lives at `data[8bk + 8p + r]`, so the wide
/// micro-kernel (`micro_8w`)
/// reads each depth step as 8 contiguous floats. The final `rows % 8`
/// tail rows are stored row-major immediately after the blocks — because
/// the blocks occupy exactly `(rows - tail) · k` floats, the whole buffer
/// doubles as a row-major matrix for rows past the last full block, which
/// is how the 4-row/1-row fallback kernels read it unchanged.
///
/// The buffer is behind an `Arc`: cloning a `PackedA` (or handing it to
/// pool workers) shares the packing instead of repeating it. A `PackedA`
/// is a snapshot — it does not observe later writes to the tensor it was
/// packed from, so repack after any weight update (the nn layers pack
/// per `infer_batch` call, which makes staleness impossible by
/// construction).
#[derive(Clone)]
pub struct PackedA {
    data: Arc<Vec<f32>>,
    rows: usize,
    k: usize,
}

impl std::fmt::Debug for PackedA {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedA").field("rows", &self.rows).field("k", &self.k).finish()
    }
}

impl PackedA {
    /// Packs a rank-2 tensor as a reusable left GEMM operand.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `a` is not rank 2.
    pub fn pack(a: &Tensor) -> Result<PackedA, TensorError> {
        if a.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: a.rank(), op: "pack_a" });
        }
        Ok(Self::pack_slice(a.as_slice(), a.dims()[0], a.dims()[1]))
    }

    fn pack_slice(av: &[f32], rows: usize, k: usize) -> PackedA {
        let mut data = workspace::take(rows * k);
        let full = rows / MR8;
        for b in 0..full {
            let dst = &mut data[b * MR8 * k..(b + 1) * MR8 * k];
            for r in 0..MR8 {
                let src = &av[(b * MR8 + r) * k..(b * MR8 + r + 1) * k];
                for (p, &x) in src.iter().enumerate() {
                    dst[p * MR8 + r] = x;
                }
            }
        }
        let tail_start = full * MR8 * k;
        data[tail_start..].copy_from_slice(&av[tail_start..rows * k]);
        PackedA { data: Arc::new(data), rows, k }
    }

    /// Row count of the packed matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Depth (column count) of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns the packing buffer to the workspace bin if this is the
    /// last reference (internal: only for packings this module created
    /// and never handed out).
    fn reclaim(self) {
        if let Ok(data) = Arc::try_unwrap(self.data) {
            workspace::give(data);
        }
    }
}

/// The right GEMM operand packed once per call into column strips of
/// [`NR2`] columns: strip `s` covers columns `[s·NR2, s·NR2 + w)`
/// (`w < NR2` only for the final strip) and stores element `b[p][j]` at
/// `strip_base + p·w + (j − s·NR2)`, so the wide micro-kernel streams
/// one contiguous strip for its entire depth sweep. Packed once and
/// shared (`Arc`) across every worker stripe instead of re-packed per
/// worker. A strip is exactly the `[p·nc + j]` panel image the legacy
/// kernels expect (with `nc = w`, `kc = k`, `jc = s·NR2`), which is how
/// tail rows reuse [`micro_4`]/[`micro_1`] against it unchanged.
struct PackedB {
    data: Vec<f32>,
}

fn pack_b_slice(bv: &[f32], k: usize, n: usize) -> PackedB {
    let mut data = workspace::take(k * n);
    // Rows outer, strips inner: each source row is read once,
    // sequentially, and scattered to the per-strip cursors. The obvious
    // strip-outer order instead reads at stride `n` — jumps that cross a
    // page every couple of rows, defeat the prefetchers, and make
    // packing cost a measurable slice of the whole GEMM at depth ≥ 1024.
    let full = n / NR2 * NR2;
    // Row-group blocking: 8 source rows (L1-resident) are scattered per
    // pass, so each strip receives one contiguous 8-row chunk instead of
    // a single [`NR2`]-wide sliver — sequential reads *and* chunked
    // sequential writes.
    let mut p0 = 0;
    while p0 < k {
        let pg = MR8.min(k - p0);
        let rows = &bv[p0 * n..(p0 + pg) * n];
        let mut js = 0;
        while js < full {
            let dst = js * k + p0 * NR2;
            for (p, row) in rows.chunks_exact(n).enumerate() {
                data[dst + p * NR2..dst + p * NR2 + NR2].copy_from_slice(&row[js..js + NR2]);
            }
            js += NR2;
        }
        if full < n {
            let w = n - full;
            let dst = full * k + p0 * w;
            for (p, row) in rows.chunks_exact(n).enumerate() {
                data[dst + p * w..dst + p * w + w].copy_from_slice(&row[full..]);
            }
        }
        p0 += pg;
    }
    PackedB { data }
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// Multiplies two rank-2 tensors, writing into a preallocated output.
///
/// `out` must have shape `[a.rows, b.cols]`. Prefer this over
/// [`Tensor::matmul`] inside hot loops to avoid reallocation. Products
/// large enough to amortize the dispatch run on the intra-op pool
/// ([`crate::set_intra_op_threads`]); the result is bit-identical to
/// [`matmul_into_serial`] either way.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if any operand is not rank 2,
/// [`TensorError::ShapeMismatch`] if the dimensions are incompatible, and
/// [`TensorError::Parallel`] if a pool worker panicked (not reachable
/// from this crate's kernels).
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    gemm(a, b, out)
}

/// Tiered GEMM entry point: `out = a · b`.
///
/// Dispatch tiers by `m·k·n` volume: tiny products run the unpacked
/// legacy kernel (packing would cost more than it saves), mid-size
/// products pack both operands and run the wide serial kernel, and large
/// products additionally stripe rows across the intra-op pool with one
/// shared packing. Identical output bits at every tier.
///
/// # Errors
///
/// Same as [`matmul_into`].
pub fn gemm(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    gemm_tiered(a.as_slice(), b.as_slice(), None, out.as_mut_slice(), m, k, n)
}

/// Tiered GEMM with fused column bias: `out = a · b + bias` with `bias`
/// broadcast across rows (`bias.len() == b.cols`).
///
/// The bias add is fused into the micro-kernel's final panel store, so it
/// costs no extra pass over `out` — yet the result is bit-identical to
/// [`gemm`] followed by `out[i][j] += bias[j]`, because both orderings
/// add `bias[j]` to the identical completed sum (asserted by the property
/// suite in `tests/kernel_bit_identity.rs`).
///
/// # Errors
///
/// Same as [`matmul_into`], plus rank/shape errors for a `bias` that is
/// not a length-`n` vector.
pub fn gemm_bias(a: &Tensor, b: &Tensor, bias: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    validate_bias(bias, n)?;
    gemm_tiered(a.as_slice(), b.as_slice(), Some(bias.as_slice()), out.as_mut_slice(), m, k, n)
}

/// [`gemm_bias`] on an explicit [`ThreadPool`], always taking the
/// row-partitioned parallel path (no size threshold). Property tests use
/// this to pin the thread count per case without mutating the global
/// intra-op setting.
///
/// # Errors
///
/// Same as [`gemm_bias`]; additionally [`TensorError::Parallel`] if a job
/// panicked.
pub fn gemm_bias_with(
    a: &Tensor,
    b: &Tensor,
    bias: &Tensor,
    out: &mut Tensor,
    pool: &ThreadPool,
) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    validate_bias(bias, n)?;
    let pa = PackedA::pack_slice(a.as_slice(), m, k);
    let result =
        gemm_parallel_packed(&pa, b.as_slice(), Some(bias.as_slice()), out.as_mut_slice(), n, pool);
    pa.reclaim();
    result
}

/// [`gemm`] against a pre-packed left operand, skipping the per-call A
/// packing. `Conv3d::infer_batch` packs its weight matrix once and reuses
/// it for every item in the batch.
///
/// # Errors
///
/// Same shape errors as [`matmul_into`] with `a`'s shape taken from the
/// packing.
pub fn gemm_packed(pa: &PackedA, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let n = validate_packed(pa, b, out)?;
    gemm_packed_tiered(pa, b.as_slice(), None, out.as_mut_slice(), n)
}

/// [`gemm_bias`] against a pre-packed left operand.
///
/// # Errors
///
/// Same as [`gemm_packed`], plus bias shape errors as in [`gemm_bias`].
pub fn gemm_bias_packed(
    pa: &PackedA,
    b: &Tensor,
    bias: &Tensor,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let n = validate_packed(pa, b, out)?;
    validate_bias(bias, n)?;
    gemm_packed_tiered(pa, b.as_slice(), Some(bias.as_slice()), out.as_mut_slice(), n)
}

fn validate_packed(pa: &PackedA, b: &Tensor, out: &Tensor) -> Result<usize, TensorError> {
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: b.rank(), op: "matmul" });
    }
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if pa.k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![pa.rows, pa.k],
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    if out.dims() != [pa.rows, n] {
        return Err(TensorError::ShapeMismatch {
            lhs: out.dims().to_vec(),
            rhs: vec![pa.rows, n],
            op: "matmul_into(out)",
        });
    }
    Ok(n)
}

/// [`matmul_into`] forced onto the blocked serial kernel, regardless of
/// the intra-op setting. This is the reference side of the bit-identity
/// contract the packed and parallel paths are tested against, and is
/// deliberately the *pre-packing* kernel (`gemm_rows`): the fast paths
/// must reproduce its bits, not the other way round.
///
/// # Errors
///
/// Same shape/rank errors as [`matmul_into`].
pub fn matmul_into_serial(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    gemm_rows(a.as_slice(), b.as_slice(), out.as_mut_slice(), m, k, n);
    Ok(())
}

/// [`matmul_into`] on an explicit [`ThreadPool`], always taking the
/// row-partitioned parallel path (no size threshold). Property tests use
/// this to pin the thread count per case without mutating the global
/// intra-op setting.
///
/// # Errors
///
/// Same as [`matmul_into`]; additionally [`TensorError::Parallel`] if a
/// job panicked.
pub fn matmul_into_with(
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
    pool: &ThreadPool,
) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    let pa = PackedA::pack_slice(a.as_slice(), m, k);
    let result = gemm_parallel_packed(&pa, b.as_slice(), None, out.as_mut_slice(), n, pool);
    pa.reclaim();
    result
}

/// The pre-blocking naive i-k-j kernel, kept as the benchmark baseline
/// (`benches/gemm.rs` reports blocked/threaded speedups against it) and
/// as an independent oracle for the property tests.
///
/// # Errors
///
/// Same shape/rank errors as [`matmul_into`].
pub fn matmul_into_reference(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    let (m, k, n) = validate(a, b, out)?;
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    ov.fill(0.0);
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut ov[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for (o, &bpn) in orow.iter_mut().zip(brow) {
                *o = aip.mul_add(bpn, *o);
            }
        }
    }
    Ok(())
}

/// Multiplies two rank-2 tensors, allocating the output.
///
/// # Errors
///
/// Same as [`matmul_into`].
pub(crate) fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[a.dims()[0], b.dims()[1]]);
    matmul_into(a, b, &mut out)?;
    Ok(out)
}

// ---------------------------------------------------------------------
// Dispatch tiers
// ---------------------------------------------------------------------

fn gemm_tiered(
    av: &[f32],
    bv: &[f32],
    bias: Option<&[f32]>,
    ov: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) -> Result<(), TensorError> {
    let volume = m.saturating_mul(k).saturating_mul(n);
    if volume >= PAR_MIN_VOLUME {
        if let Some(pool) = intra_op_pool() {
            let pa = PackedA::pack_slice(av, m, k);
            let result = gemm_parallel_packed(&pa, bv, bias, ov, n, &pool);
            pa.reclaim();
            return result;
        }
    }
    if volume >= FAST_MIN_VOLUME {
        let pa = PackedA::pack_slice(av, m, k);
        let pb = pack_b_slice(bv, k, n);
        gemm_packed_stripe(&pa.data, m, k, &pb.data, n, bias, ov);
        pa.reclaim();
        workspace::give(pb.data);
        return Ok(());
    }
    gemm_rows(av, bv, ov, m, k, n);
    if let Some(bv) = bias {
        if n > 0 {
            for row in ov.chunks_exact_mut(n) {
                for (o, &b) in row.iter_mut().zip(bv) {
                    *o += b;
                }
            }
        }
    }
    Ok(())
}

fn gemm_packed_tiered(
    pa: &PackedA,
    bv: &[f32],
    bias: Option<&[f32]>,
    ov: &mut [f32],
    n: usize,
) -> Result<(), TensorError> {
    let volume = pa.rows.saturating_mul(pa.k).saturating_mul(n);
    if volume >= PAR_MIN_VOLUME {
        if let Some(pool) = intra_op_pool() {
            return gemm_parallel_packed(pa, bv, bias, ov, n, &pool);
        }
    }
    // The packing is already paid for, so even tiny products take the
    // packed kernel (only B remains to pack — same cost as a legacy
    // panel pass).
    let pb = pack_b_slice(bv, pa.k, n);
    gemm_packed_stripe(&pa.data, pa.rows, pa.k, &pb.data, n, bias, ov);
    workspace::give(pb.data);
    Ok(())
}

/// Row-partitioned parallel GEMM over packed operands. A and B are packed
/// *once*; each worker shares them via `Arc`, computes an owned output
/// stripe with the same [`gemm_packed_stripe`] kernel the serial path
/// runs, and the caller stitches stripes back in range order. Stripe
/// boundaries align to [`MR8`]-row packed blocks
/// ([`row_ranges_blocked`]), so a worker's slice of the packed A buffer
/// is itself a valid blocks-then-tail packing (only the final stripe can
/// own tail rows). Shares are `O(mk + kn + mn)` against `O(mkn)` compute.
/// Disjoint rows + identical per-row code ⇒ bit-identical to serial at
/// any partitioning.
fn gemm_parallel_packed(
    pa: &PackedA,
    bv: &[f32],
    bias: Option<&[f32]>,
    ov: &mut [f32],
    n: usize,
    pool: &ThreadPool,
) -> Result<(), TensorError> {
    let (rows, k) = (pa.rows, pa.k);
    let ranges = row_ranges_blocked(rows, pool.threads(), MR8);
    let pb = pack_b_slice(bv, k, n);
    if ranges.len() <= 1 {
        gemm_packed_stripe(&pa.data, rows, k, &pb.data, n, bias, ov);
        workspace::give(pb.data);
        return Ok(());
    }
    let pb = Arc::new(pb);
    let bias_shared: Option<Arc<Vec<f32>>> = bias.map(|b| Arc::new(b.to_vec()));
    // The caller computes the first stripe itself, directly into the
    // output buffer, while the workers chew the rest: one less wakeup
    // and stitch, and the calling core never idles waiting on the pool.
    let (first, rest) = ranges.split_first().expect("ranges.len() > 1 checked above");
    let jobs: Vec<_> = rest
        .iter()
        .map(|r| {
            let a_data = Arc::clone(&pa.data);
            let pb = Arc::clone(&pb);
            let bias_shared = bias_shared.clone();
            let (start, end) = (r.start, r.end);
            move || {
                let stripe_rows = end - start;
                let mut stripe = workspace::take(stripe_rows * n);
                gemm_packed_stripe(
                    &a_data[start * k..end * k],
                    stripe_rows,
                    k,
                    &pb.data,
                    n,
                    bias_shared.as_deref().map(Vec::as_slice),
                    &mut stripe,
                );
                stripe
            }
        })
        .collect();
    let (first_out, rest_out) = ov.split_at_mut(first.end * n);
    let (stripes, ()) = pool.run_with_local(jobs, || {
        gemm_packed_stripe(
            &pa.data[first.start * k..first.end * k],
            first.end - first.start,
            k,
            &pb.data,
            n,
            bias,
            first_out,
        );
    });
    let stripes = stripes
        .map_err(|e| TensorError::Parallel { op: "matmul_into", message: e.to_string() })?;
    for (r, stripe) in rest.iter().zip(stripes) {
        rest_out[(r.start - first.end) * n..(r.end - first.end) * n].copy_from_slice(&stripe);
        workspace::give(stripe);
    }
    if let Ok(pb) = Arc::try_unwrap(pb) {
        workspace::give(pb.data);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------

/// Packed-operand GEMM over a contiguous block of output rows:
/// `ov[rows × n] = pa[rows × k] · pb[k × n] (+ bias)`. `pa` is a
/// [`PackedA`] buffer (or a block-aligned slice of one); `pb` is a full
/// strip-packed [`PackedB`] buffer. This single kernel body serves the
/// packed serial path and every worker stripe.
///
/// Each full 8-row block sweeps the *entire depth* against one B strip
/// at a time ([`micro_8w`]/[`micro_8n`]): accumulators live in registers
/// for the whole `k` extent and are stored exactly once, with the
/// optional bias fused into that store — no output pre-fill, no partial
/// sums round-tripping through memory between depth panels. (The store
/// schedule differs from the legacy KC-panelled kernel, but the
/// per-element float program — products added in strictly increasing `p`
/// from `0.0`, bias last — is identical, and f32 ops are deterministic,
/// so the bits can't differ.) The A block (`8·k` floats) stays hot
/// across strips; each strip (`k·NR2` floats) streams once per block.
///
/// Tail rows (fewer than 8 at the bottom) reuse the legacy
/// [`micro_4`]/[`micro_1`] kernels — the packed buffer is row-major past
/// the last full block (see [`PackedA`]), and a B strip is exactly a
/// legacy panel of shape `k × w` — with an explicit pre-zero and
/// post-loop bias add. Either way each element runs the contract's float
/// program exactly.
fn gemm_packed_stripe(
    pa: &[f32],
    rows: usize,
    k: usize,
    pb: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    ov: &mut [f32],
) {
    if rows == 0 || n == 0 {
        return;
    }
    if k == 0 {
        ov.fill(0.0);
        if let Some(bv) = bias {
            for row in ov.chunks_exact_mut(n) {
                for (o, &b) in row.iter_mut().zip(bv) {
                    *o += b;
                }
            }
        }
        return;
    }
    let tail = (rows / MR8) * MR8;
    // Strips outer, row-blocks inner: the strip under work stays warm
    // while the A blocks stream past it sequentially once per strip —
    // the A side is `rows/8`× smaller than re-streaming all of B per
    // row-block would be.
    let mut cursor = 0;
    let mut js = 0;
    while js < n {
        let w = NR2.min(n - js);
        let strip = &pb[cursor..cursor + k * w];
        cursor += k * w;
        let mut i = 0;
        while i + MR8 <= rows {
            let ablock = &pa[i * k..(i + MR8) * k];
            if w == NR2 {
                micro_8w(ablock, strip, ov, n, i, js, bias);
            } else {
                micro_8n(ablock, strip, k, w, ov, n, i, js, bias);
            }
            i += MR8;
        }
        js += w;
    }
    if tail < rows {
        ov[tail * n..].fill(0.0);
        let mut cursor = 0;
        let mut js = 0;
        while js < n {
            let w = NR2.min(n - js);
            let strip = &pb[cursor..cursor + k * w];
            cursor += k * w;
            let mut i = tail;
            while i + MR <= rows {
                micro_4(pa, ov, k, n, i, 0, k, js, w, strip);
                i += MR;
            }
            while i < rows {
                micro_1(pa, ov, k, n, i, 0, k, js, w, strip);
                i += 1;
            }
            js += w;
        }
        if let Some(bv) = bias {
            for row in ov[tail * n..].chunks_exact_mut(n) {
                for (o, &b) in row.iter_mut().zip(bv) {
                    *o += b;
                }
            }
        }
    }
}

/// Legacy blocked GEMM over a contiguous block of output rows:
/// `ov[rows × n] = av[rows × k] · bv[k × n]` with per-call panel packing
/// and the 4-row micro-kernel. Serves [`matmul_into_serial`] (the
/// bit-identity reference) and the sub-[`FAST_MIN_VOLUME`] serial tier.
fn gemm_rows(av: &[f32], bv: &[f32], ov: &mut [f32], rows: usize, k: usize, n: usize) {
    ov.fill(0.0);
    if rows == 0 || k == 0 || n == 0 {
        return;
    }
    let mut panel = vec![0.0f32; KC.min(k) * NC.min(n)];
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            for p in 0..kc {
                let src = (pc + p) * n + jc;
                panel[p * nc..p * nc + nc].copy_from_slice(&bv[src..src + nc]);
            }
            let mut i = 0;
            while i + MR <= rows {
                micro_4(av, ov, k, n, i, pc, kc, jc, nc, &panel);
                i += MR;
            }
            while i < rows {
                micro_1(av, ov, k, n, i, pc, kc, jc, nc, &panel);
                i += 1;
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Wide packed micro-kernel: 8 output rows × one full-width B strip,
/// sweeping the **entire depth** in one register pass. The accumulators
/// are four `[[f32; NR]; 4]` tiles — a two-accumulator unroll where
/// `lo`/`hi` split the 8 rows and `_a`/`_b` split the [`NR2`]-column
/// pair — 16 wide vectors total, sized to the AVX-512 register file.
/// `ablock` is the packed A block for rows `i..i+8` (`ablock[8p + r]`,
/// depth-major: every depth step reads 8 contiguous floats, and each
/// broadcast B value feeds 8 FMAs instead of 4); `strip` is one packed B
/// strip (`strip[p·NR2 + j]`). The FMA order is fixed: per element,
/// products accumulate from `0.0` in increasing `p` exactly as in
/// [`micro_4`], and the optional `bias[j]` lands after the final
/// product, fused into the single store. The 8-row body is deliberately
/// hand-unrolled: a generic `for r in 0..8` formulation measurably
/// defeats the autovectorizer.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_8w(
    ablock: &[f32],
    strip: &[f32],
    ov: &mut [f32],
    n: usize,
    i: usize,
    js: usize,
    bias: Option<&[f32]>,
) {
    let mut lo_a = [[0.0f32; NR]; 4];
    let mut lo_b = [[0.0f32; NR]; 4];
    let mut hi_a = [[0.0f32; NR]; 4];
    let mut hi_b = [[0.0f32; NR]; 4];
    // chunks_exact (not indexed slicing) so the depth loop carries no
    // bounds checks: both iterators yield fixed-size chunks whose length
    // the optimizer knows statically.
    for (ar, br) in ablock.chunks_exact(MR8).zip(strip.chunks_exact(NR2)) {
        let (b0, b1) = br.split_at(NR);
        let x0 = ar[0];
        let x1 = ar[1];
        let x2 = ar[2];
        let x3 = ar[3];
        let x4 = ar[4];
        let x5 = ar[5];
        let x6 = ar[6];
        let x7 = ar[7];
        for (jj, &bval) in b0.iter().enumerate() {
            lo_a[0][jj] = x0.mul_add(bval, lo_a[0][jj]);
            lo_a[1][jj] = x1.mul_add(bval, lo_a[1][jj]);
            lo_a[2][jj] = x2.mul_add(bval, lo_a[2][jj]);
            lo_a[3][jj] = x3.mul_add(bval, lo_a[3][jj]);
            hi_a[0][jj] = x4.mul_add(bval, hi_a[0][jj]);
            hi_a[1][jj] = x5.mul_add(bval, hi_a[1][jj]);
            hi_a[2][jj] = x6.mul_add(bval, hi_a[2][jj]);
            hi_a[3][jj] = x7.mul_add(bval, hi_a[3][jj]);
        }
        for (jj, &bval) in b1.iter().enumerate() {
            lo_b[0][jj] = x0.mul_add(bval, lo_b[0][jj]);
            lo_b[1][jj] = x1.mul_add(bval, lo_b[1][jj]);
            lo_b[2][jj] = x2.mul_add(bval, lo_b[2][jj]);
            lo_b[3][jj] = x3.mul_add(bval, lo_b[3][jj]);
            hi_b[0][jj] = x4.mul_add(bval, hi_b[0][jj]);
            hi_b[1][jj] = x5.mul_add(bval, hi_b[1][jj]);
            hi_b[2][jj] = x6.mul_add(bval, hi_b[2][jj]);
            hi_b[3][jj] = x7.mul_add(bval, hi_b[3][jj]);
        }
    }
    if let Some(bv) = bias {
        let bt = &bv[js..js + NR2];
        let (t0, t1) = bt.split_at(NR);
        for r in 0..4 {
            for jj in 0..NR {
                lo_a[r][jj] += t0[jj];
                lo_b[r][jj] += t1[jj];
                hi_a[r][jj] += t0[jj];
                hi_b[r][jj] += t1[jj];
            }
        }
    }
    for r in 0..4 {
        let base = (i + r) * n + js;
        ov[base..base + NR].copy_from_slice(&lo_a[r]);
        ov[base + NR..base + NR2].copy_from_slice(&lo_b[r]);
        let base = (i + 4 + r) * n + js;
        ov[base..base + NR].copy_from_slice(&hi_a[r]);
        ov[base + NR..base + NR2].copy_from_slice(&hi_b[r]);
    }
}

/// Narrow-strip variant of [`micro_8w`] for the final B strip when
/// `n % NR2 != 0`: one 8×NR register pass while a full NR tile remains,
/// then a scalar column loop — each running the identical per-element
/// program (full-depth accumulation from `0.0`, bias last, single
/// store).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_8n(
    ablock: &[f32],
    strip: &[f32],
    k: usize,
    w: usize,
    ov: &mut [f32],
    n: usize,
    i: usize,
    js: usize,
    bias: Option<&[f32]>,
) {
    let mut j = 0;
    while j + NR <= w {
        let mut lo = [[0.0f32; NR]; 4];
        let mut hi = [[0.0f32; NR]; 4];
        for (ar, brow) in ablock.chunks_exact(MR8).zip(strip.chunks_exact(w)) {
            let br = &brow[j..j + NR];
            let x0 = ar[0];
            let x1 = ar[1];
            let x2 = ar[2];
            let x3 = ar[3];
            let x4 = ar[4];
            let x5 = ar[5];
            let x6 = ar[6];
            let x7 = ar[7];
            for (jj, &bval) in br.iter().enumerate() {
                lo[0][jj] = x0.mul_add(bval, lo[0][jj]);
                lo[1][jj] = x1.mul_add(bval, lo[1][jj]);
                lo[2][jj] = x2.mul_add(bval, lo[2][jj]);
                lo[3][jj] = x3.mul_add(bval, lo[3][jj]);
                hi[0][jj] = x4.mul_add(bval, hi[0][jj]);
                hi[1][jj] = x5.mul_add(bval, hi[1][jj]);
                hi[2][jj] = x6.mul_add(bval, hi[2][jj]);
                hi[3][jj] = x7.mul_add(bval, hi[3][jj]);
            }
        }
        if let Some(bv) = bias {
            let bt = &bv[js + j..js + j + NR];
            for tile in lo.iter_mut() {
                for (o, &b) in tile.iter_mut().zip(bt) {
                    *o += b;
                }
            }
            for tile in hi.iter_mut() {
                for (o, &b) in tile.iter_mut().zip(bt) {
                    *o += b;
                }
            }
        }
        for (r, tile) in lo.iter().enumerate() {
            let base = (i + r) * n + js + j;
            ov[base..base + NR].copy_from_slice(tile);
        }
        for (r, tile) in hi.iter().enumerate() {
            let base = (i + 4 + r) * n + js + j;
            ov[base..base + NR].copy_from_slice(tile);
        }
        j += NR;
    }
    while j < w {
        for r in 0..MR8 {
            let idx = (i + r) * n + js + j;
            let mut s = 0.0f32;
            for p in 0..k {
                s = ablock[p * MR8 + r].mul_add(strip[p * w + j], s);
            }
            if let Some(bv) = bias {
                s += bv[js + j];
            }
            ov[idx] = s;
        }
        j += 1;
    }
}

/// Register-tiled fallback micro-kernel: 4 output rows × one packed
/// panel, reading row-major A. The `[[f32; NR]; MR]` accumulator tile is
/// loaded from `ov` (carrying the partial sum of earlier `pc` panels),
/// updated in increasing-`p` order, and stored back. Remainder columns
/// past the last full `NR` tile use a scalar loop with the identical
/// per-element accumulation order. The 4-row body is deliberately
/// hand-unrolled: a generic `for r in 0..MR` formulation measurably
/// defeats the autovectorizer. Serves [`gemm_rows`] for all rows and
/// [`gemm_packed_stripe`] for tail rows past the last packed 8-block.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_4(
    av: &[f32],
    ov: &mut [f32],
    k: usize,
    n: usize,
    i: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    panel: &[f32],
) {
    let a0 = &av[i * k + pc..i * k + pc + kc];
    let a1 = &av[(i + 1) * k + pc..(i + 1) * k + pc + kc];
    let a2 = &av[(i + 2) * k + pc..(i + 2) * k + pc + kc];
    let a3 = &av[(i + 3) * k + pc..(i + 3) * k + pc + kc];
    let mut j = 0;
    while j + NR <= nc {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, tile) in acc.iter_mut().enumerate() {
            let base = (i + r) * n + jc + j;
            tile.copy_from_slice(&ov[base..base + NR]);
        }
        for p in 0..kc {
            let br = &panel[p * nc + j..p * nc + j + NR];
            let x0 = a0[p];
            let x1 = a1[p];
            let x2 = a2[p];
            let x3 = a3[p];
            for (jj, &bval) in br.iter().enumerate() {
                acc[0][jj] = x0.mul_add(bval, acc[0][jj]);
                acc[1][jj] = x1.mul_add(bval, acc[1][jj]);
                acc[2][jj] = x2.mul_add(bval, acc[2][jj]);
                acc[3][jj] = x3.mul_add(bval, acc[3][jj]);
            }
        }
        for (r, tile) in acc.iter().enumerate() {
            let base = (i + r) * n + jc + j;
            ov[base..base + NR].copy_from_slice(tile);
        }
        j += NR;
    }
    while j < nc {
        for (r, ar) in [a0, a1, a2, a3].into_iter().enumerate() {
            let idx = (i + r) * n + jc + j;
            let mut s = ov[idx];
            for (p, &x) in ar.iter().enumerate() {
                s = x.mul_add(panel[p * nc + j], s);
            }
            ov[idx] = s;
        }
        j += 1;
    }
}

/// Single-row remainder kernel; per-element float program identical to
/// [`micro_4`], so remainder rows land on the same bits no matter where
/// a partition boundary falls.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_1(
    av: &[f32],
    ov: &mut [f32],
    k: usize,
    n: usize,
    i: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    panel: &[f32],
) {
    let a0 = &av[i * k + pc..i * k + pc + kc];
    let mut j = 0;
    while j + NR <= nc {
        let base = i * n + jc + j;
        let mut acc = [0.0f32; NR];
        acc.copy_from_slice(&ov[base..base + NR]);
        for (p, &x0) in a0.iter().enumerate() {
            let br = &panel[p * nc + j..p * nc + j + NR];
            for (jj, &bval) in br.iter().enumerate() {
                acc[jj] = x0.mul_add(bval, acc[jj]);
            }
        }
        ov[base..base + NR].copy_from_slice(&acc);
        j += NR;
    }
    while j < nc {
        let idx = i * n + jc + j;
        let mut s = ov[idx];
        for (p, &x0) in a0.iter().enumerate() {
            s = x0.mul_add(panel[p * nc + j], s);
        }
        ov[idx] = s;
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s = a.as_slice()[i * k + p].mul_add(b.as_slice()[p * n + j], s);
                }
                out.as_mut_slice()[i * n + j] = s;
            }
        }
        out
    }

    #[test]
    fn matches_hand_computed_2x2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::new(11);
        let a = Tensor::randn(&[4, 4], 1.0, rng.as_rng());
        let c = a.matmul(&Tensor::eye(4)).unwrap();
        for (x, y) in a.as_slice().iter().zip(c.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matches_naive_on_rectangular_inputs() {
        let mut rng = Rng64::new(12);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (7, 4, 9), (16, 16, 16), (21, 19, 35)] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let fast = a.matmul(&b).unwrap();
            let slow = naive(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "mismatch at ({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn blocked_kernel_is_bitwise_naive_per_element() {
        // Both kernels sum a[i][p]·b[p][j] from 0.0 in increasing-p order,
        // so they must agree bit-for-bit, tile remainders included.
        let mut rng = Rng64::new(14);
        for &(m, k, n) in &[(5, 7, 3), (4, 16, 16), (9, 300, 21), (17, 33, 40)] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let mut blocked = Tensor::zeros(&[m, n]);
            matmul_into_serial(&a, &b, &mut blocked).unwrap();
            let slow = naive(&a, &b);
            assert_eq!(blocked.as_slice(), slow.as_slice(), "({m},{k},{n})");
        }
    }

    #[test]
    fn packed_serial_kernel_is_bitwise_legacy_serial() {
        // The 8×16 packed fast path must land on the legacy reference's
        // bits for every row-remainder class and panel boundary.
        let mut rng = Rng64::new(21);
        for &(m, k, n) in &[
            (8, 16, 16),   // exactly one packed block
            (16, 300, 33), // k crosses a KC panel, two blocks, odd n
            (7, 25, 18),   // tail-only (no full 8-block)
            (23, 40, 17),  // two blocks + 7-row tail
            (9, 5, 40),    // one block + 1-row tail
        ] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let mut serial = Tensor::zeros(&[m, n]);
            matmul_into_serial(&a, &b, &mut serial).unwrap();
            let pa = PackedA::pack(&a).unwrap();
            let pb = pack_b_slice(b.as_slice(), k, n);
            let mut fast = Tensor::full(&[m, n], f32::NAN);
            gemm_packed_stripe(&pa.data, m, k, &pb.data, n, None, fast.as_mut_slice());
            assert_eq!(
                serial.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fast.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m},{k},{n})"
            );
        }
    }

    #[test]
    fn packed_a_layout_interleaves_blocks_and_leaves_tail_row_major() {
        // 10 rows of k=3: one full 8-block (depth-major, 8-interleaved)
        // then 2 tail rows stored row-major at their natural offset.
        let rows = 10;
        let k = 3;
        let a = Tensor::from_vec((0..rows * k).map(|x| x as f32).collect(), &[rows, k]).unwrap();
        let pa = PackedA::pack(&a).unwrap();
        assert_eq!(pa.rows(), rows);
        assert_eq!(pa.k(), k);
        let av = a.as_slice();
        for p in 0..k {
            for r in 0..MR8 {
                assert_eq!(pa.data[p * MR8 + r], av[r * k + p], "block element ({r},{p})");
            }
        }
        assert_eq!(&pa.data[MR8 * k..], &av[MR8 * k..], "tail rows must stay row-major");
    }

    #[test]
    fn gemm_bias_matches_gemm_plus_bias_loop_bitwise() {
        let mut rng = Rng64::new(22);
        for &(m, k, n) in &[(1, 3, 5), (8, 16, 16), (13, 70, 21), (24, 300, 40)] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let bias = Tensor::randn(&[n], 1.0, rng.as_rng());
            let mut unfused = Tensor::zeros(&[m, n]);
            gemm(&a, &b, &mut unfused).unwrap();
            for row in unfused.as_mut_slice().chunks_exact_mut(n) {
                for (o, &bb) in row.iter_mut().zip(bias.as_slice()) {
                    *o += bb;
                }
            }
            let mut fused = Tensor::full(&[m, n], f32::NAN);
            gemm_bias(&a, &b, &bias, &mut fused).unwrap();
            assert_eq!(
                unfused.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fused.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m},{k},{n})"
            );
        }
    }

    #[test]
    fn gemm_packed_reuses_packing_across_right_operands() {
        let mut rng = Rng64::new(23);
        let a = Tensor::randn(&[11, 19], 1.0, rng.as_rng());
        let pa = PackedA::pack(&a).unwrap();
        for _ in 0..3 {
            let b = Tensor::randn(&[19, 23], 1.0, rng.as_rng());
            let mut want = Tensor::zeros(&[11, 23]);
            matmul_into_serial(&a, &b, &mut want).unwrap();
            let mut got = Tensor::zeros(&[11, 23]);
            gemm_packed(&pa, &b, &mut got).unwrap();
            assert_eq!(want.as_slice(), got.as_slice());
        }
    }

    #[test]
    fn gemm_bias_validates_bias_shape() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let mut out = Tensor::zeros(&[2, 4]);
        let wrong_len = Tensor::zeros(&[5]);
        assert!(gemm_bias(&a, &b, &wrong_len, &mut out).is_err());
        let wrong_rank = Tensor::zeros(&[4, 1]);
        assert!(gemm_bias(&a, &b, &wrong_rank, &mut out).is_err());
        let pool = ThreadPool::new(2);
        assert!(gemm_bias_with(&a, &b, &wrong_len, &mut out, &pool).is_err());
        let good = Tensor::zeros(&[4]);
        assert!(gemm_bias(&a, &b, &good, &mut out).is_ok());
    }

    #[test]
    fn packed_entry_points_validate_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let pa = PackedA::pack(&a).unwrap();
        let bad_b = Tensor::zeros(&[4, 2]);
        let mut out = Tensor::zeros(&[2, 4]);
        assert!(gemm_packed(&pa, &bad_b, &mut out).is_err());
        let b = Tensor::zeros(&[3, 4]);
        let mut bad_out = Tensor::zeros(&[2, 3]);
        assert!(gemm_packed(&pa, &b, &mut bad_out).is_err());
        assert!(PackedA::pack(&Tensor::zeros(&[3])).is_err());
        assert!(gemm_packed(&pa, &b, &mut out).is_ok());
    }

    #[test]
    fn explicit_pool_matches_serial_bitwise() {
        let mut rng = Rng64::new(15);
        let pool = ThreadPool::new(3);
        for &(m, k, n) in &[(1, 4, 4), (6, 20, 18), (23, 17, 31)] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let mut serial = Tensor::zeros(&[m, n]);
            let mut parallel = Tensor::zeros(&[m, n]);
            matmul_into_serial(&a, &b, &mut serial).unwrap();
            matmul_into_with(&a, &b, &mut parallel, &pool).unwrap();
            assert_eq!(serial.as_slice(), parallel.as_slice(), "({m},{k},{n})");
        }
    }

    #[test]
    fn rejects_incompatible_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn sparse_lhs_rows_are_skipped_correctly() {
        // `matmul_into_reference` skips zero entries of `a`; the blocked
        // kernel performs them. Both must land on the same values for the
        // mostly-zero masked attack tensors.
        let mut rng = Rng64::new(13);
        let mut a = Tensor::zeros(&[5, 8]);
        for i in [0usize, 9, 17, 33] {
            a.as_mut_slice()[i] = rng.normal();
        }
        let b = Tensor::randn(&[8, 6], 1.0, rng.as_rng());
        let fast = a.matmul(&b).unwrap();
        let mut reference = Tensor::zeros(&[5, 6]);
        matmul_into_reference(&a, &b, &mut reference).unwrap();
        assert_eq!(fast.as_slice(), reference.as_slice());
        let slow = naive(&a, &b);
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn matmul_into_overwrites_stale_output() {
        let a = Tensor::eye(2);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let mut out = Tensor::full(&[2, 2], 99.0);
        matmul_into(&a, &b, &mut out).unwrap();
        assert_eq!(out.as_slice(), b.as_slice(), "previous contents must not leak");
    }

    #[test]
    fn packed_path_overwrites_stale_output() {
        // The 8×16 kernel skips the output pre-fill (first-panel
        // accumulators start in registers), so stale output reuse is a
        // dedicated hazard for it.
        let mut rng = Rng64::new(17);
        let a = Tensor::randn(&[16, 20], 1.0, rng.as_rng());
        let b = Tensor::randn(&[20, 24], 1.0, rng.as_rng());
        let mut want = Tensor::zeros(&[16, 24]);
        matmul_into_serial(&a, &b, &mut want).unwrap();
        let pa = PackedA::pack(&a).unwrap();
        let mut stale = Tensor::full(&[16, 24], f32::NAN);
        gemm_packed(&pa, &b, &mut stale).unwrap();
        assert_eq!(want.as_slice(), stale.as_slice(), "NaN canary leaked into output");
    }

    #[test]
    fn parallel_path_overwrites_stale_output() {
        let mut rng = Rng64::new(16);
        let pool = ThreadPool::new(2);
        let a = Tensor::randn(&[7, 5], 1.0, rng.as_rng());
        let b = Tensor::randn(&[5, 9], 1.0, rng.as_rng());
        let mut fresh = Tensor::zeros(&[7, 9]);
        let mut stale = Tensor::full(&[7, 9], -3.5);
        matmul_into_with(&a, &b, &mut fresh, &pool).unwrap();
        matmul_into_with(&a, &b, &mut stale, &pool).unwrap();
        assert_eq!(fresh.as_slice(), stale.as_slice());
    }

    #[test]
    fn matmul_into_validates_out_shape() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let mut bad = Tensor::zeros(&[2, 3]);
        assert!(matmul_into(&a, &b, &mut bad).is_err());
        let pool = ThreadPool::new(2);
        assert!(matmul_into_with(&a, &b, &mut bad, &pool).is_err());
        assert!(matmul_into_serial(&a, &b, &mut bad).is_err());
        assert!(matmul_into_reference(&a, &b, &mut bad).is_err());
        let mut good = Tensor::zeros(&[2, 4]);
        assert!(matmul_into(&a, &b, &mut good).is_ok());
    }

    #[test]
    fn degenerate_inner_dimension_zeroes_output() {
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 2]);
        let mut out = Tensor::full(&[3, 2], 5.0);
        matmul_into(&a, &b, &mut out).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
        // The fused-bias path must still see the bias on a k=0 product.
        let bias = Tensor::from_vec(vec![1.5, -2.0], &[2]).unwrap();
        let mut with_bias = Tensor::full(&[3, 2], 5.0);
        gemm_bias(&a, &b, &bias, &mut with_bias).unwrap();
        assert_eq!(with_bias.as_slice(), &[1.5, -2.0, 1.5, -2.0, 1.5, -2.0]);
        let pool = ThreadPool::new(2);
        let mut par = Tensor::full(&[3, 2], 5.0);
        gemm_bias_with(&a, &b, &bias, &mut par, &pool).unwrap();
        assert_eq!(par.as_slice(), with_bias.as_slice());
    }
}
