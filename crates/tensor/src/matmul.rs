//! Blocked matrix multiplication.
//!
//! The convolution kernels in this crate lower to matrix multiplication via
//! im2col, so `matmul` dominates the runtime of every model forward/backward
//! pass in the workspace. The implementation below uses a simple i-k-j loop
//! order (inner loop streams over contiguous memory of both the packed `b`
//! row and the output row) which is enough to keep single-core experiments
//! tractable without unsafe code.

use crate::{Tensor, TensorError};

/// Multiplies two rank-2 tensors, writing into a preallocated output.
///
/// `out` must have shape `[a.rows, b.cols]`. Prefer this over
/// [`Tensor::matmul`] inside hot loops to avoid reallocation.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if any operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the dimensions are incompatible.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<(), TensorError> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: a.rank(), op: "matmul" });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: b.rank(), op: "matmul" });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    if out.dims() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            lhs: out.dims().to_vec(),
            rhs: vec![m, n],
            op: "matmul_into(out)",
        });
    }

    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    ov.fill(0.0);
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut ov[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for (o, &bpn) in orow.iter_mut().zip(brow) {
                *o += aip * bpn;
            }
        }
    }
    Ok(())
}

/// Multiplies two rank-2 tensors, allocating the output.
///
/// # Errors
///
/// Same as [`matmul_into`].
pub(crate) fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[a.dims()[0], b.dims()[1]]);
    matmul_into(a, b, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
                }
                out.as_mut_slice()[i * n + j] = s;
            }
        }
        out
    }

    #[test]
    fn matches_hand_computed_2x2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng64::new(11);
        let a = Tensor::randn(&[4, 4], 1.0, rng.as_rng());
        let c = a.matmul(&Tensor::eye(4)).unwrap();
        for (x, y) in a.as_slice().iter().zip(c.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matches_naive_on_rectangular_inputs() {
        let mut rng = Rng64::new(12);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (7, 4, 9), (16, 16, 16)] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let fast = a.matmul(&b).unwrap();
            let slow = naive(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "mismatch at ({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn rejects_incompatible_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn sparse_lhs_rows_are_skipped_correctly() {
        // The inner loop skips zero entries of `a`; results must match the
        // naive path exactly when `a` is mostly zeros (the regime of
        // masked attack tensors).
        let mut rng = Rng64::new(13);
        let mut a = Tensor::zeros(&[5, 8]);
        for i in [0usize, 9, 17, 33] {
            a.as_mut_slice()[i] = rng.normal();
        }
        let b = Tensor::randn(&[8, 6], 1.0, rng.as_rng());
        let fast = a.matmul(&b).unwrap();
        let slow = naive(&a, &b);
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn matmul_into_overwrites_stale_output() {
        let a = Tensor::eye(2);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let mut out = Tensor::full(&[2, 2], 99.0);
        matmul_into(&a, &b, &mut out).unwrap();
        assert_eq!(out.as_slice(), b.as_slice(), "previous contents must not leak");
    }

    #[test]
    fn matmul_into_validates_out_shape() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let mut bad = Tensor::zeros(&[2, 3]);
        assert!(matmul_into(&a, &b, &mut bad).is_err());
        let mut good = Tensor::zeros(&[2, 4]);
        assert!(matmul_into(&a, &b, &mut good).is_ok());
    }
}
