use crate::TensorError;
use std::fmt;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// A `Shape` is a thin validated wrapper over a `Vec<usize>` that provides
/// the index arithmetic (row-major linearization) used by every kernel in
/// this crate.
///
/// # Example
///
/// ```
/// use duo_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.linearize(&[1, 2, 3]).unwrap(), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

crate::impl_to_json!(struct Shape { dims });

impl Shape {
    /// Creates a shape from a slice of dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank) of the shape.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements described by the shape.
    ///
    /// A rank-0 shape describes a single scalar element.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape describes zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides for this shape (innermost stride is 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any coordinate is out of range.
    pub fn linearize(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len()
            || index.iter().zip(&self.dims).any(|(&i, &d)| i >= d)
        {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut offset = 0usize;
        for (&i, stride) in index.iter().zip(self.strides()) {
            offset += i * stride;
        }
        Ok(offset)
    }

    /// Converts a flat row-major offset back to a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `offset >= len()`.
    pub fn delinearize(&self, offset: usize) -> Result<Vec<usize>, TensorError> {
        if offset >= self.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![offset],
                shape: self.dims.clone(),
            });
        }
        let mut rem = offset;
        let mut index = vec![0usize; self.dims.len()];
        for (i, stride) in self.strides().into_iter().enumerate() {
            index[i] = rem / stride;
            rem %= stride;
        }
        Ok(index)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[7]).len(), 7);
        assert_eq!(Shape::new(&[]).len(), 1, "rank-0 shape is a scalar");
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn linearize_round_trips_with_delinearize() {
        let s = Shape::new(&[3, 4, 5]);
        for off in 0..s.len() {
            let idx = s.delinearize(off).unwrap();
            assert_eq!(s.linearize(&idx).unwrap(), off);
        }
    }

    #[test]
    fn linearize_rejects_out_of_range() {
        let s = Shape::new(&[2, 2]);
        assert!(s.linearize(&[2, 0]).is_err());
        assert!(s.linearize(&[0]).is_err());
        assert!(s.delinearize(4).is_err());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
    }
}
