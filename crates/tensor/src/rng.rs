//! Deterministic random sampling helpers.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! Gaussian sampling needed for weight initialization and noise injection is
//! implemented here via the Box–Muller transform.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Samples one standard-normal variate using the Box–Muller transform.
pub(crate) fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by shifting u1 away from zero.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// A small seeded RNG wrapper used across the workspace for reproducible
/// experiments.
///
/// Every experiment binary and test in the DUO reproduction derives its
/// randomness from a `Rng64` so that paper-style tables are re-generated
/// bit-identically from the same seed.
///
/// # Example
///
/// ```
/// use duo_tensor::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.normal(), b.normal());
/// ```
#[derive(Debug)]
pub struct Rng64 {
    inner: StdRng,
}

impl Rng64 {
    /// Creates a new RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng64 { inner: StdRng::seed_from_u64(seed) }
    }

    /// One standard-normal variate.
    pub fn normal(&mut self) -> f32 {
        sample_normal(&mut self.inner)
    }

    /// One uniform variate in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.random::<f32>()
    }

    /// One uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below requires n > 0");
        self.inner.random_range(0..n)
    }

    /// Derives a child RNG with an independent stream, for splitting
    /// randomness across experiment arms without cross-contamination.
    pub fn fork(&mut self, salt: u64) -> Rng64 {
        let s = (self.inner.random::<u64>()).wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Rng64::new(s)
    }

    /// Access to the underlying `rand` RNG for APIs that take `impl Rng`.
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n) in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions need shuffling.
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// Extension helpers on the standard RNG used by lower-level code.
pub trait StdRngExt {
    /// One standard-normal variate.
    fn normal_f32(&mut self) -> f32;
}

impl<R: Rng + ?Sized> StdRngExt for R {
    fn normal_f32(&mut self) -> f32 {
        sample_normal(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = Rng64::new(1);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng64::new(2);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = Rng64::new(3);
        let idx = rng.sample_indices(100, 40);
        assert_eq!(idx.len(), 40);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_range_is_permutation() {
        let mut rng = Rng64::new(4);
        let mut idx = rng.sample_indices(10, 10);
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_differ() {
        let mut rng = Rng64::new(5);
        let mut a = rng.fork(1);
        let mut b = rng.fork(2);
        let xs: Vec<f32> = (0..8).map(|_| a.uniform()).collect();
        let ys: Vec<f32> = (0..8).map(|_| b.uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "requires n > 0")]
    fn below_zero_panics() {
        Rng64::new(6).below(0);
    }
}
