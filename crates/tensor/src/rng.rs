//! Deterministic in-tree random sampling.
//!
//! The workspace is hermetic — no external crates — so the generator
//! itself lives here: a SplitMix64 seeder feeding a xoshiro256++ core
//! (Blackman & Vigna, "Scrambled linear pseudorandom number generators").
//! Both algorithms are public-domain reference constructions, small enough
//! to audit, and fast enough that sampling never shows up in profiles.
//!
//! Everything downstream derives its randomness from [`Rng64`] so that
//! paper-style tables are re-generated bit-identically from the same seed,
//! on every platform: the stream is defined purely over `u64` arithmetic.

/// One step of the SplitMix64 sequence; used for seeding and stream
/// splitting because every bit of the seed affects every bit of the state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The raw xoshiro256++ generator: 256 bits of state, period `2^256 − 1`.
///
/// This is the low-level engine behind [`Rng64`]; use it directly only
/// when an API needs `impl RandomSource` without the convenience wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the full 256-bit state via SplitMix64,
    /// per the reference implementation's seeding recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256pp {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic source of random bits plus the derived samplers the
/// workspace needs (uniform, normal, bounded integers).
///
/// All provided methods are defined purely in terms of [`next_u64`], so
/// any implementor yields identical derived streams for identical bit
/// streams — the property the reproducibility tests pin down.
///
/// [`next_u64`]: RandomSource::next_u64
pub trait RandomSource {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// One uniform variate in `[0, 1)` with 53 random mantissa bits.
    fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One uniform variate in `[0, 1)` with 24 random mantissa bits.
    fn uniform_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// One uniform integer in `[0, n)`, bias-free via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "RandomSource::below requires n > 0");
        let n = n as u64;
        // Accept only draws below the largest multiple of n, so every
        // residue is equally likely. The rejection probability is < 2⁻³².
        let zone = (u64::MAX / n) * n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// One standard-normal variate via the Box–Muller transform.
    fn normal_f32(&mut self) -> f32 {
        // Avoid ln(0) by shifting u1 away from zero.
        let u1 = self.uniform_f64().max(1e-12);
        let u2 = self.uniform_f64();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }
}

impl RandomSource for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256pp::next_u64(self)
    }
}

/// Samples one standard-normal variate from any source (kept as a free
/// function because `Tensor::randn` predates the trait method).
pub(crate) fn sample_normal<R: RandomSource + ?Sized>(rng: &mut R) -> f32 {
    rng.normal_f32()
}

/// A small seeded RNG wrapper used across the workspace for reproducible
/// experiments.
///
/// Every experiment binary and test in the DUO reproduction derives its
/// randomness from a `Rng64` so that paper-style tables are re-generated
/// bit-identically from the same seed.
///
/// # Example
///
/// ```
/// use duo_tensor::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.normal(), b.normal());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    inner: Xoshiro256pp,
}

impl Rng64 {
    /// Creates a new RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng64 { inner: Xoshiro256pp::seed_from_u64(seed) }
    }

    /// One standard-normal variate.
    pub fn normal(&mut self) -> f32 {
        self.inner.normal_f32()
    }

    /// One uniform variate in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.uniform_f32()
    }

    /// One uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below requires n > 0");
        self.inner.below(n)
    }

    /// Derives a child RNG with an independent stream, for splitting
    /// randomness across experiment arms without cross-contamination.
    pub fn fork(&mut self, salt: u64) -> Rng64 {
        let s = self.inner.next_u64().wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Rng64::new(s)
    }

    /// Access to the underlying engine for APIs that take
    /// `impl RandomSource`.
    pub fn as_rng(&mut self) -> &mut Xoshiro256pp {
        &mut self.inner
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "Rng64::choose requires a non-empty slice");
        &slice[self.below(slice.len())]
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n) in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions need shuffling.
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RandomSource for Rng64 {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs computed from an independent implementation of
    /// the published xoshiro256++ / SplitMix64 algorithms. Pinning the raw
    /// stream guards every seeded table in the repo against accidental
    /// generator drift.
    #[test]
    fn xoshiro_matches_reference_vectors() {
        let mut r0 = Xoshiro256pp::seed_from_u64(0);
        assert_eq!(
            [r0.next_u64(), r0.next_u64(), r0.next_u64(), r0.next_u64()],
            [
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
            ]
        );
        let mut r42 = Xoshiro256pp::seed_from_u64(42);
        assert_eq!(
            [r42.next_u64(), r42.next_u64(), r42.next_u64(), r42.next_u64()],
            [
                0xd0764d4f4476689f,
                0x519e4174576f3791,
                0xfbe07cfb0c24ed8c,
                0xb37d9f600cd835b8,
            ]
        );
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = Rng64::new(1);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_stays_in_unit_interval_and_fills_it() {
        let mut rng = Rng64::new(9);
        let xs: Vec<f32> = (0..10_000).map(|_| rng.uniform()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(xs.iter().any(|&x| x < 0.05) && xs.iter().any(|&x| x > 0.95));
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng64::new(2);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_hits_every_residue() {
        let mut rng = Rng64::new(8);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = Rng64::new(3);
        let idx = rng.sample_indices(100, 40);
        assert_eq!(idx.len(), 40);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_range_is_permutation() {
        let mut rng = Rng64::new(4);
        let mut idx = rng.sample_indices(10, 10);
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_contained_element() {
        let mut rng = Rng64::new(10);
        let xs = [3, 1, 4, 1, 5, 9];
        for _ in 0..100 {
            assert!(xs.contains(rng.choose(&xs)));
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut rng = Rng64::new(5);
        let mut a = rng.fork(1);
        let mut b = rng.fork(2);
        let xs: Vec<f32> = (0..8).map(|_| a.uniform()).collect();
        let ys: Vec<f32> = (0..8).map(|_| b.uniform()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn identical_seeds_yield_identical_streams() {
        let mut a = Rng64::new(77);
        let mut b = Rng64::new(77);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a, b, "state equality after identical histories");
    }

    #[test]
    #[should_panic(expected = "requires n > 0")]
    fn below_zero_panics() {
        Rng64::new(6).below(0);
    }

    #[test]
    #[should_panic(expected = "non-empty slice")]
    fn choose_empty_panics() {
        Rng64::new(7).choose::<u8>(&[]);
    }
}
