//! Minimal JSON writing.
//!
//! The hermetic build has no `serde`, but experiment binaries and the
//! bench runner still need machine-readable output for the paper-style
//! tables. This module provides the small subset actually used: a [`Json`]
//! value tree, a [`ToJson`] trait, and the [`crate::impl_to_json!`] macro that
//! derives `ToJson` for plain structs and fieldless enums. There is
//! deliberately no parser — nothing in the workspace reads JSON back.
//!
//! # Example
//!
//! ```
//! use duo_tensor::json::{Json, ToJson};
//!
//! struct Row { name: &'static str, ap: f32 }
//! duo_tensor::impl_to_json!(struct Row { name, ap });
//!
//! let row = Row { name: "duo", ap: 91.5 };
//! assert_eq!(row.to_json().to_string(), r#"{"name":"duo","ap":91.5}"#);
//! ```

use std::fmt;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite floats, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer; `i128` losslessly holds every integer type in use.
    Int(i128),
    /// A binary32 number, printed with Rust's shortest round-trip format.
    F32(f32),
    /// A binary64 number, printed with Rust's shortest round-trip format.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved (no map, no sorting).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(String, Json)>) -> Json {
        Json::Object(fields)
    }
}

fn write_escaped(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::F32(x) if !x.is_finite() => f.write_str("null"),
            Json::F32(x) => write!(f, "{x}"),
            Json::F64(x) if !x.is_finite() => f.write_str("null"),
            Json::F64(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(s, f),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Conversion into a [`Json`] value — the workspace's replacement for
/// `serde::Serialize`.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F32(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! int_to_json {
    ($($ty:ty),+) => {
        $(impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        })+
    };
}
int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson> ToJson for (A, B, C, D) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json(), self.3.to_json()])
    }
}

/// Derives [`ToJson`] for a struct with named fields (emitted as an
/// object, fields in declaration order) or a fieldless enum (emitted as
/// the variant name string).
///
/// ```
/// use duo_tensor::impl_to_json;
/// use duo_tensor::json::ToJson;
///
/// struct Stats { hits: u64, rate: f32 }
/// impl_to_json!(struct Stats { hits, rate });
///
/// enum Mode { Fast, Exact }
/// impl_to_json!(enum Mode { Fast, Exact });
///
/// assert_eq!(Mode::Exact.to_json().to_string(), "\"Exact\"");
/// ```
#[macro_export]
macro_rules! impl_to_json {
    (struct $ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Object(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    ),)+
                ])
            }
        }
    };
    (enum $ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $(Self::$variant => {
                        $crate::json::Json::Str(stringify!($variant).to_string())
                    })+
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(true.to_json().to_string(), "true");
        assert_eq!(42u64.to_json().to_string(), "42");
        assert_eq!((-3i32).to_json().to_string(), "-3");
        assert_eq!(1.5f32.to_json().to_string(), "1.5");
        assert_eq!(f32::NAN.to_json().to_string(), "null", "NaN is not JSON");
        assert_eq!(f64::INFINITY.to_json().to_string(), "null");
    }

    #[test]
    fn floats_round_trip_shortest() {
        // Rust's Display prints the shortest string that parses back to
        // the same bits — exactly what table output wants.
        assert_eq!(0.1f32.to_json().to_string(), "0.1");
        assert_eq!(0.1f64.to_json().to_string(), "0.1");
    }

    #[test]
    fn strings_are_escaped() {
        let s = "a\"b\\c\nd\u{1}";
        assert_eq!(s.to_json().to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn arrays_objects_and_options_compose() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.to_json().to_string(), "[1,2,3]");
        assert_eq!(Some(5u8).to_json().to_string(), "5");
        assert_eq!(None::<u8>.to_json().to_string(), "null");
        let obj = Json::object(vec![
            ("k".to_string(), "v".to_json()),
            ("n".to_string(), 7usize.to_json()),
        ]);
        assert_eq!(obj.to_string(), r#"{"k":"v","n":7}"#);
    }

    #[test]
    fn derive_macro_covers_structs_and_enums() {
        struct Row {
            name: &'static str,
            ap: f32,
            queries: u64,
        }
        crate::impl_to_json!(struct Row { name, ap, queries });

        #[allow(dead_code)]
        enum Kind {
            Alpha,
            Beta,
        }
        crate::impl_to_json!(enum Kind { Alpha, Beta });

        let row = Row { name: "duo", ap: 91.25, queries: 120 };
        assert_eq!(row.to_json().to_string(), r#"{"name":"duo","ap":91.25,"queries":120}"#);
        assert_eq!(Kind::Beta.to_json().to_string(), "\"Beta\"");
    }
}
