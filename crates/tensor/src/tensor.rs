use crate::rng::RandomSource;
use crate::{Shape, TensorError};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single numeric container shared by every crate in the
/// DUO workspace: video clips, model activations, gradients, perturbation
/// masks and feature embeddings are all `Tensor`s. The representation is a
/// flat `Vec<f32>` plus a [`Shape`]; there are no views or strides, which
/// keeps every kernel simple enough to verify by property testing.
///
/// # Example
///
/// ```
/// use duo_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

crate::impl_to_json!(struct Tensor { shape, data });

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![value; len] }
    }

    /// Creates a square identity matrix of side `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not
    /// match the number of elements implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor with elements drawn i.i.d. from `N(0, std^2)`.
    pub fn randn<R: RandomSource + ?Sized>(dims: &[usize], std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        let data = (0..len).map(|_| crate::rng::sample_normal(rng) * std).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with elements drawn i.i.d. uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: RandomSource + ?Sized>(
        dims: &[usize],
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        let data = (0..len).map(|_| lo + (hi - lo) * rng.uniform_f32()).collect();
        Tensor { shape, data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions of the tensor, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.linearize(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.linearize(index)?;
        self.data[off] = value;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data but a different shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: self.data.len() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.rank(), op: "transpose" });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op,
            });
        }
        Ok(())
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "add")?;
        Ok(self.zip_unchecked(other, |a, b| a + b))
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "sub")?;
        Ok(self.zip_unchecked(other, |a, b| a - b))
    }

    /// Elementwise (Hadamard) product `self ⊙ other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "mul")?;
        Ok(self.zip_unchecked(other, |a, b| a * b))
    }

    /// In-place elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|x| x * scalar)
    }

    /// Applies `f` to each element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to each element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    fn zip_unchecked<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "zip")?;
        Ok(self.zip_unchecked(other, f))
    }

    /// Clamps every element to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    // ------------------------------------------------------------------
    // Reductions and norms
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        // Kahan summation: the attack objectives difference tiny loss deltas,
        // so reduction error must stay well below those deltas.
        let mut sum = 0.0f32;
        let mut c = 0.0f32;
        for &x in &self.data {
            let y = x - c;
            let t = sum + y;
            c = (t - sum) - y;
            sum = t;
        }
        sum
    }

    /// Mean of all elements; 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence); `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .fold(None, |best, (i, &x)| match best {
                Some((_, bx)) if bx >= x => best,
                _ => Some((i, x)),
            })
            .map(|(i, _)| i)
    }

    /// Number of non-zero elements (the ℓ0 "norm" used for sparsity).
    pub fn l0_norm(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Sum of absolute values (ℓ1 norm).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Euclidean (ℓ2) norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute value (ℓ∞ norm).
    pub fn linf_norm(&self) -> f32 {
        self.data.iter().map(|x| x.abs()).fold(0.0, f32::max)
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32, TensorError> {
        self.check_same_shape(other, "dot")?;
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Squared Euclidean distance `‖self - other‖²`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sq_distance(&self, other: &Tensor) -> Result<f32, TensorError> {
        self.check_same_shape(other, "sq_distance")?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum())
    }

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either tensor is not rank 2,
    /// or [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        crate::matmul::matmul(self, other)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|x| format!("{x:.4}")).collect();
        write!(f, "[{}{}]", preview.join(", "), if self.data.len() > 8 { ", …" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256pp;

    #[test]
    fn constructors_produce_expected_values() {
        assert!(Tensor::zeros(&[3]).as_slice().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).as_slice().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2, 2], 7.5).as_slice().iter().all(|&x| x == 7.5));
        let eye = Tensor::eye(3);
        assert_eq!(eye.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(eye.at(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn elementwise_ops_respect_shapes() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[11.0, 22.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-9.0, -18.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[10.0, 40.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn norms_match_hand_computation() {
        let t = Tensor::from_vec(vec![3.0, -4.0, 0.0], &[3]).unwrap();
        assert_eq!(t.l0_norm(), 2);
        assert_eq!(t.l1_norm(), 7.0);
        assert_eq!(t.l2_norm(), 5.0);
        assert_eq!(t.linf_norm(), 4.0);
    }

    #[test]
    fn reductions_match_hand_computation() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.argmax(), Some(3));
    }

    #[test]
    fn argmax_returns_first_max() {
        let t = Tensor::from_vec(vec![5.0, 5.0, 1.0], &[3]).unwrap();
        assert_eq!(t.argmax(), Some(0));
        assert_eq!(Tensor::zeros(&[0]).argmax(), None);
    }

    #[test]
    fn transpose_swaps_axes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]).unwrap(), 6.0);
        assert_eq!(tt.at(&[0, 1]).unwrap(), 4.0);
    }

    #[test]
    fn clamp_bounds_values() {
        let t = Tensor::from_vec(vec![-5.0, 0.5, 9.0], &[3]).unwrap();
        assert_eq!(t.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn randn_is_deterministic_for_fixed_seed() {
        let mut r1 = Xoshiro256pp::seed_from_u64(7);
        let mut r2 = Xoshiro256pp::seed_from_u64(7);
        let a = Tensor::randn(&[16], 1.0, &mut r1);
        let b = Tensor::randn(&[16], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn sq_distance_matches_norm_of_difference() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 6.0], &[2]).unwrap();
        assert_eq!(a.sq_distance(&b).unwrap(), 25.0);
    }
}
