use std::fmt;

/// Error type for tensor operations.
///
/// Every fallible operation in this crate reports a structured error so the
/// higher-level crates (models, attacks) can surface precise diagnostics
/// instead of panicking deep inside a numeric kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The number of elements implied by a shape does not match the data length.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A convolution/pooling geometry was invalid (e.g. kernel larger than input).
    InvalidGeometry(String),
    /// A numeric argument was invalid (e.g. zero-sized dimension, negative size).
    InvalidArgument(String),
    /// A parallel kernel failed because a thread-pool job panicked.
    ///
    /// The panic was contained by the pool ([`crate::ThreadPool::run`])
    /// and the pool remains usable; this error surfaces it to the caller
    /// instead of unwinding through the kernel.
    Parallel {
        /// Name of the kernel that dispatched the failed jobs.
        op: &'static str,
        /// Rendered panic message from the pool.
        message: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: shape requires {expected} elements, got {actual}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::RankMismatch { expected, actual, op } => {
                write!(f, "rank mismatch in `{op}`: expected rank {expected}, got {actual}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TensorError::Parallel { op, message } => {
                write!(f, "parallel kernel `{op}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
