//! im2col / col2im lowering for 2-D and 3-D convolution.
//!
//! Convolution layers in `duo-nn` are implemented as
//! `weights [out_c, in_c·k…] × im2col(input) [in_c·k…, positions]`, and
//! their input gradients as `col2im(weightsᵀ × grad_out)`. Keeping the
//! lowering here (as pure tensor-to-tensor functions) lets the property
//! tests validate it against a naive direct convolution.

use std::sync::Arc;

use crate::par::{intra_op_pool, row_ranges, ThreadPool};
use crate::{Tensor, TensorError};

/// Geometry of a 2-D convolution over `[C, H, W]` inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride along height.
    pub sh: usize,
    /// Stride along width.
    pub sw: usize,
    /// Zero padding along height (applied symmetrically).
    pub ph: usize,
    /// Zero padding along width (applied symmetrically).
    pub pw: usize,
}

crate::impl_to_json!(struct Conv2dSpec { in_channels, kh, kw, sh, sw, ph, pw });

impl Conv2dSpec {
    /// Output spatial size `(out_h, out_w)` for an `[C, h, w]` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the kernel does not fit.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize), TensorError> {
        let eh = h + 2 * self.ph;
        let ew = w + 2 * self.pw;
        if self.kh == 0 || self.kw == 0 || self.sh == 0 || self.sw == 0 {
            return Err(TensorError::InvalidGeometry("kernel/stride must be positive".into()));
        }
        if eh < self.kh || ew < self.kw {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kh, self.kw, eh, ew
            )));
        }
        Ok(((eh - self.kh) / self.sh + 1, (ew - self.kw) / self.sw + 1))
    }
}

/// Geometry of a 3-D convolution over `[C, T, H, W]` inputs (T = frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv3dSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Kernel extent along time.
    pub kt: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride along time.
    pub st: usize,
    /// Stride along height.
    pub sh: usize,
    /// Stride along width.
    pub sw: usize,
    /// Zero padding along time.
    pub pt: usize,
    /// Zero padding along height.
    pub ph: usize,
    /// Zero padding along width.
    pub pw: usize,
}

crate::impl_to_json!(struct Conv3dSpec { in_channels, kt, kh, kw, st, sh, sw, pt, ph, pw });

impl Conv3dSpec {
    /// Convenience constructor for a cubic kernel with symmetric stride/pad.
    pub fn cubic(in_channels: usize, k: usize, stride: (usize, usize, usize), pad: usize) -> Self {
        Conv3dSpec {
            in_channels,
            kt: k,
            kh: k,
            kw: k,
            st: stride.0,
            sh: stride.1,
            sw: stride.2,
            pt: pad,
            ph: pad,
            pw: pad,
        }
    }

    /// Output size `(out_t, out_h, out_w)` for a `[C, t, h, w]` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the kernel does not fit.
    pub fn output_thw(&self, t: usize, h: usize, w: usize) -> Result<(usize, usize, usize), TensorError> {
        let et = t + 2 * self.pt;
        let eh = h + 2 * self.ph;
        let ew = w + 2 * self.pw;
        if self.kt == 0 || self.kh == 0 || self.kw == 0 || self.st == 0 || self.sh == 0 || self.sw == 0 {
            return Err(TensorError::InvalidGeometry("kernel/stride must be positive".into()));
        }
        if et < self.kt || eh < self.kh || ew < self.kw {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {}x{}x{} larger than padded input {}x{}x{}",
                self.kt, self.kh, self.kw, et, eh, ew
            )));
        }
        Ok((
            (et - self.kt) / self.st + 1,
            (eh - self.kh) / self.sh + 1,
            (ew - self.kw) / self.sw + 1,
        ))
    }
}

/// Unfolds a `[C, H, W]` input into a `[C·kh·kw, out_h·out_w]` matrix.
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or invalid geometry.
pub fn im2col2d(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor, TensorError> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: input.rank(), op: "im2col2d" });
    }
    let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: input.dims().to_vec(),
            rhs: vec![spec.in_channels],
            op: "im2col2d(channels)",
        });
    }
    let (oh, ow) = spec.output_hw(h, w)?;
    let rows = c * spec.kh * spec.kw;
    let cols = oh * ow;
    let mut out = Tensor::zeros(&[rows, cols]);
    let iv = input.as_slice();
    let ov = out.as_mut_slice();
    for ch in 0..c {
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let row = (ch * spec.kh + ky) * spec.kw + kx;
                for oy in 0..oh {
                    let y = (oy * spec.sh + ky) as isize - spec.ph as isize;
                    for ox in 0..ow {
                        let x = (ox * spec.sw + kx) as isize - spec.pw as isize;
                        let col = oy * ow + ox;
                        let val = if y >= 0 && (y as usize) < h && x >= 0 && (x as usize) < w {
                            iv[(ch * h + y as usize) * w + x as usize]
                        } else {
                            0.0
                        };
                        ov[row * cols + col] = val;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Folds a `[C·kh·kw, out_h·out_w]` gradient matrix back onto a `[C, H, W]`
/// input gradient (scatter-add; the adjoint of [`im2col2d`]).
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or invalid geometry.
pub fn col2im2d(
    cols: &Tensor,
    spec: &Conv2dSpec,
    h: usize,
    w: usize,
) -> Result<Tensor, TensorError> {
    let (oh, ow) = spec.output_hw(h, w)?;
    let c = spec.in_channels;
    if cols.dims() != [c * spec.kh * spec.kw, oh * ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.dims().to_vec(),
            rhs: vec![c * spec.kh * spec.kw, oh * ow],
            op: "col2im2d",
        });
    }
    let ncols = oh * ow;
    let mut out = Tensor::zeros(&[c, h, w]);
    let cv = cols.as_slice();
    let ov = out.as_mut_slice();
    for ch in 0..c {
        for ky in 0..spec.kh {
            for kx in 0..spec.kw {
                let row = (ch * spec.kh + ky) * spec.kw + kx;
                for oy in 0..oh {
                    let y = (oy * spec.sh + ky) as isize - spec.ph as isize;
                    if y < 0 || y as usize >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let x = (ox * spec.sw + kx) as isize - spec.pw as isize;
                        if x < 0 || x as usize >= w {
                            continue;
                        }
                        ov[(ch * h + y as usize) * w + x as usize] += cv[row * ncols + oy * ow + ox];
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Unfolds a `[C, T, H, W]` input into a `[C·kt·kh·kw, out_t·out_h·out_w]`
/// matrix.
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or invalid geometry.
pub fn im2col3d(input: &Tensor, spec: &Conv3dSpec) -> Result<Tensor, TensorError> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "im2col3d" });
    }
    let (t, h, w) = (input.dims()[1], input.dims()[2], input.dims()[3]);
    let (ot, oh, ow) = spec.output_thw(t, h, w)?;
    let rows = spec.in_channels * spec.kt * spec.kh * spec.kw;
    let cols = ot * oh * ow;
    let mut out = Tensor::zeros(&[rows, cols]);
    im2col3d_into(input, spec, &mut out)?;
    Ok(out)
}

/// `rows · cols` volume below which [`im2col3d_into`] stays serial; the
/// lowering is pure data movement, so it needs a bigger matrix than GEMM
/// does before the per-worker input copy pays for itself.
const IM2COL_PAR_MIN_VOLUME: usize = 1 << 16;

/// Validated geometry of one im2col3d lowering.
#[derive(Clone, Copy)]
struct ColGeom {
    t: usize,
    h: usize,
    w: usize,
    ot: usize,
    oh: usize,
    ow: usize,
    rows: usize,
    cols: usize,
}

fn im2col3d_geom(
    input: &Tensor,
    spec: &Conv3dSpec,
    out: &Tensor,
) -> Result<ColGeom, TensorError> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "im2col3d" });
    }
    let (c, t, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            lhs: input.dims().to_vec(),
            rhs: vec![spec.in_channels],
            op: "im2col3d(channels)",
        });
    }
    let (ot, oh, ow) = spec.output_thw(t, h, w)?;
    let rows = c * spec.kt * spec.kh * spec.kw;
    let cols = ot * oh * ow;
    if out.dims() != [rows, cols] {
        return Err(TensorError::ShapeMismatch {
            lhs: out.dims().to_vec(),
            rhs: vec![rows, cols],
            op: "im2col3d_into(out)",
        });
    }
    Ok(ColGeom { t, h, w, ot, oh, ow, rows, cols })
}

/// Fills `stripe` (a `[stripe_rows × cols]` block starting at output row
/// `row_start`) of the im2col matrix. The lowering is pure data movement
/// — every element is an independent copy-or-zero — so running disjoint
/// row ranges on different workers is trivially bit-identical to serial.
fn im2col3d_rows(
    iv: &[f32],
    spec: &Conv3dSpec,
    g: ColGeom,
    row_start: usize,
    stripe: &mut [f32],
) {
    let cols = g.cols;
    for (local, out_row) in stripe.chunks_exact_mut(cols).enumerate() {
        // Invert `row = ((ch·kt + kz)·kh + ky)·kw + kx`.
        let row = row_start + local;
        let kx = row % spec.kw;
        let rest = row / spec.kw;
        let ky = rest % spec.kh;
        let rest = rest / spec.kh;
        let kz = rest % spec.kt;
        let ch = rest / spec.kt;
        for oz in 0..g.ot {
            let z = (oz * spec.st + kz) as isize - spec.pt as isize;
            let z_ok = z >= 0 && (z as usize) < g.t;
            for oy in 0..g.oh {
                let y = (oy * spec.sh + ky) as isize - spec.ph as isize;
                let y_ok = y >= 0 && (y as usize) < g.h;
                for ox in 0..g.ow {
                    let x = (ox * spec.sw + kx) as isize - spec.pw as isize;
                    let col = (oz * g.oh + oy) * g.ow + ox;
                    out_row[col] = if z_ok && y_ok && x >= 0 && (x as usize) < g.w {
                        iv[((ch * g.t + z as usize) * g.h + y as usize) * g.w + x as usize]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

fn im2col3d_parallel(
    iv: &[f32],
    spec: &Conv3dSpec,
    g: ColGeom,
    ov: &mut [f32],
    pool: &ThreadPool,
) -> Result<(), TensorError> {
    let ranges = row_ranges(g.rows, pool.threads());
    if ranges.len() <= 1 {
        im2col3d_rows(iv, spec, g, 0, ov);
        return Ok(());
    }
    let input_shared: Arc<Vec<f32>> = Arc::new(iv.to_vec());
    let spec = *spec;
    let jobs: Vec<_> = ranges
        .iter()
        .map(|r| {
            let input_shared = Arc::clone(&input_shared);
            let (start, len) = (r.start, r.len());
            move || {
                let mut stripe = vec![0.0f32; len * g.cols];
                im2col3d_rows(&input_shared, &spec, g, start, &mut stripe);
                stripe
            }
        })
        .collect();
    let stripes = pool
        .run(jobs)
        .map_err(|e| TensorError::Parallel { op: "im2col3d_into", message: e.to_string() })?;
    for (r, stripe) in ranges.iter().zip(stripes) {
        ov[r.start * g.cols..r.end * g.cols].copy_from_slice(&stripe);
    }
    Ok(())
}

/// [`im2col3d`] writing into a preallocated `[rows, cols]` output — every
/// position (padding zeros included) is overwritten, so the buffer can be
/// reused across the items of a batch without clearing. This is the
/// workspace-reuse entry point the batched inference path is built on:
/// the column matrix is the largest allocation of a convolution forward,
/// and sharing one across a batch amortizes its cost to one item.
///
/// Matrices large enough to amortize the dispatch split their rows
/// across the intra-op pool ([`crate::set_intra_op_threads`]); the output
/// is bit-identical to the serial lowering at any thread count.
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or invalid geometry.
pub fn im2col3d_into(
    input: &Tensor,
    spec: &Conv3dSpec,
    out: &mut Tensor,
) -> Result<(), TensorError> {
    let g = im2col3d_geom(input, spec, out)?;
    if g.rows.saturating_mul(g.cols) >= IM2COL_PAR_MIN_VOLUME {
        if let Some(pool) = intra_op_pool() {
            return im2col3d_parallel(input.as_slice(), spec, g, out.as_mut_slice(), &pool);
        }
    }
    im2col3d_rows(input.as_slice(), spec, g, 0, out.as_mut_slice());
    Ok(())
}

/// [`im2col3d_into`] on an explicit [`ThreadPool`], always taking the
/// row-partitioned parallel path (no size threshold). Property tests use
/// this to pin the thread count per case without mutating the global
/// intra-op setting.
///
/// # Errors
///
/// Same as [`im2col3d_into`]; additionally [`TensorError::Parallel`] if a
/// job panicked.
pub fn im2col3d_into_with(
    input: &Tensor,
    spec: &Conv3dSpec,
    out: &mut Tensor,
    pool: &ThreadPool,
) -> Result<(), TensorError> {
    let g = im2col3d_geom(input, spec, out)?;
    im2col3d_parallel(input.as_slice(), spec, g, out.as_mut_slice(), pool)
}

/// Folds a `[C·kt·kh·kw, out_t·out_h·out_w]` gradient matrix back onto a
/// `[C, T, H, W]` input gradient (scatter-add; the adjoint of [`im2col3d`]).
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or invalid geometry.
pub fn col2im3d(
    cols: &Tensor,
    spec: &Conv3dSpec,
    t: usize,
    h: usize,
    w: usize,
) -> Result<Tensor, TensorError> {
    let (ot, oh, ow) = spec.output_thw(t, h, w)?;
    let c = spec.in_channels;
    let rows = c * spec.kt * spec.kh * spec.kw;
    let ncols = ot * oh * ow;
    if cols.dims() != [rows, ncols] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.dims().to_vec(),
            rhs: vec![rows, ncols],
            op: "col2im3d",
        });
    }
    let mut out = Tensor::zeros(&[c, t, h, w]);
    let cv = cols.as_slice();
    let ov = out.as_mut_slice();
    for ch in 0..c {
        for kz in 0..spec.kt {
            for ky in 0..spec.kh {
                for kx in 0..spec.kw {
                    let row = ((ch * spec.kt + kz) * spec.kh + ky) * spec.kw + kx;
                    for oz in 0..ot {
                        let z = (oz * spec.st + kz) as isize - spec.pt as isize;
                        if z < 0 || z as usize >= t {
                            continue;
                        }
                        for oy in 0..oh {
                            let y = (oy * spec.sh + ky) as isize - spec.ph as isize;
                            if y < 0 || y as usize >= h {
                                continue;
                            }
                            for ox in 0..ow {
                                let x = (ox * spec.sw + kx) as isize - spec.pw as isize;
                                if x < 0 || x as usize >= w {
                                    continue;
                                }
                                ov[((ch * t + z as usize) * h + y as usize) * w + x as usize] +=
                                    cv[row * ncols + (oz * oh + oy) * ow + ox];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    /// Naive direct 2-D convolution used as the reference implementation.
    fn conv2d_naive(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
        let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
        let oc = weight.dims()[0];
        let (oh, ow) = spec.output_hw(h, w).unwrap();
        let mut out = Tensor::zeros(&[oc, oh, ow]);
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut s = 0.0;
                    for ch in 0..c {
                        for ky in 0..spec.kh {
                            for kx in 0..spec.kw {
                                let y = (oy * spec.sh + ky) as isize - spec.ph as isize;
                                let x = (ox * spec.sw + kx) as isize - spec.pw as isize;
                                if y >= 0 && (y as usize) < h && x >= 0 && (x as usize) < w {
                                    let iv = input.as_slice()
                                        [(ch * h + y as usize) * w + x as usize];
                                    let wv = weight.as_slice()
                                        [((o * c + ch) * spec.kh + ky) * spec.kw + kx];
                                    s += iv * wv;
                                }
                            }
                        }
                    }
                    out.as_mut_slice()[(o * oh + oy) * ow + ox] = s;
                }
            }
        }
        out
    }

    #[test]
    fn im2col2d_matmul_matches_naive_conv() {
        let mut rng = Rng64::new(21);
        let spec = Conv2dSpec { in_channels: 2, kh: 3, kw: 3, sh: 2, sw: 1, ph: 1, pw: 1 };
        let input = Tensor::randn(&[2, 5, 6], 1.0, rng.as_rng());
        let weight = Tensor::randn(&[4, 2, 3, 3], 1.0, rng.as_rng());
        let cols = im2col2d(&input, &spec).unwrap();
        let wm = weight.reshape(&[4, 2 * 3 * 3]).unwrap();
        let fast = wm.matmul(&cols).unwrap();
        let slow = conv2d_naive(&input, &weight, &spec);
        let (oh, ow) = spec.output_hw(5, 6).unwrap();
        let fast = fast.reshape(&[4, oh, ow]).unwrap();
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn col2im2d_is_adjoint_of_im2col2d() {
        // <im2col(x), y> == <x, col2im(y)> for all x, y: the defining
        // property of the adjoint, which is exactly what backprop requires.
        let mut rng = Rng64::new(22);
        let spec = Conv2dSpec { in_channels: 2, kh: 2, kw: 3, sh: 1, sw: 2, ph: 1, pw: 0 };
        let x = Tensor::randn(&[2, 4, 7], 1.0, rng.as_rng());
        let cols = im2col2d(&x, &spec).unwrap();
        let y = Tensor::randn(cols.dims(), 1.0, rng.as_rng());
        let lhs = cols.dot(&y).unwrap();
        let back = col2im2d(&y, &spec, 4, 7).unwrap();
        let rhs = x.dot(&back).unwrap();
        assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im3d_is_adjoint_of_im2col3d() {
        let mut rng = Rng64::new(23);
        let spec = Conv3dSpec::cubic(2, 3, (1, 2, 2), 1);
        let x = Tensor::randn(&[2, 4, 6, 6], 1.0, rng.as_rng());
        let cols = im2col3d(&x, &spec).unwrap();
        let y = Tensor::randn(cols.dims(), 1.0, rng.as_rng());
        let lhs = cols.dot(&y).unwrap();
        let back = col2im3d(&y, &spec, 4, 6, 6).unwrap();
        let rhs = x.dot(&back).unwrap();
        assert!((lhs - rhs).abs() < 5e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn output_geometry_matches_formula() {
        let spec = Conv3dSpec::cubic(3, 3, (2, 2, 2), 1);
        assert_eq!(spec.output_thw(8, 16, 16).unwrap(), (4, 8, 8));
        let spec2 = Conv2dSpec { in_channels: 1, kh: 3, kw: 3, sh: 1, sw: 1, ph: 0, pw: 0 };
        assert_eq!(spec2.output_hw(5, 5).unwrap(), (3, 3));
    }

    #[test]
    fn rejects_oversized_kernels() {
        let spec = Conv2dSpec { in_channels: 1, kh: 9, kw: 9, sh: 1, sw: 1, ph: 0, pw: 0 };
        assert!(spec.output_hw(5, 5).is_err());
        let spec3 = Conv3dSpec::cubic(1, 5, (1, 1, 1), 0);
        assert!(spec3.output_thw(3, 8, 8).is_err());
    }

    #[test]
    fn im2col3d_identity_kernel_is_reshape() {
        // A 1x1x1 kernel with unit stride must reproduce the input exactly.
        let mut rng = Rng64::new(24);
        let x = Tensor::randn(&[3, 2, 4, 4], 1.0, rng.as_rng());
        let spec = Conv3dSpec::cubic(3, 1, (1, 1, 1), 0);
        let cols = im2col3d(&x, &spec).unwrap();
        assert_eq!(cols.dims(), &[3, 2 * 4 * 4]);
        assert_eq!(cols.as_slice(), x.as_slice());
    }
}
