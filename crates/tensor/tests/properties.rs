//! Property-based tests for the tensor substrate.
//!
//! Everything built above this crate (backprop, ADMM projections, attack
//! objectives) assumes these algebraic identities hold, so they are checked
//! over randomized inputs rather than a handful of examples.

use duo_check::{check, prop_assert, prop_assert_eq, vec_of, Config};
use duo_tensor::{
    avg_pool3d, avg_pool3d_backward, col2im2d, col2im3d, im2col2d, im2col3d, max_pool3d,
    max_pool3d_backward, Conv2dSpec, Conv3dSpec, Pool3dSpec, Rng64, Shape, Tensor,
};

/// Wraps a generated value vector as a rank-1 tensor (duo-check strategies
/// produce plain values; tensors are assembled in the property body).
fn tensor_of(v: Vec<f32>) -> Tensor {
    let n = v.len();
    Tensor::from_vec(v, &[n]).expect("length matches shape")
}

check! {
    #![config(Config::default().with_cases(256))]

    fn add_commutes(v in vec_of(-1e3f32..1e3, 1..64)) {
        let n = v.len();
        let a = Tensor::from_vec(v.clone(), &[n]).unwrap();
        let b = Tensor::from_vec(v.iter().map(|x| x * 0.5 - 1.0).collect(), &[n]).unwrap();
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    fn sub_then_add_round_trips(v in vec_of(-100.0f32..100.0, 1..64)) {
        let t = tensor_of(v);
        let b = t.map(|x| x * 0.25 + 3.0);
        let back = t.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in t.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3f32.max(x.abs() * 1e-5));
        }
    }

    fn scale_is_linear(v in vec_of(-100.0f32..100.0, 1..64), k in -10.0f32..10.0) {
        let t = tensor_of(v);
        let s = t.scale(k);
        for (x, y) in t.as_slice().iter().zip(s.as_slice()) {
            prop_assert_eq!(x * k, *y);
        }
    }

    fn l2_norm_triangle_inequality(v in vec_of(-100.0f32..100.0, 1..32)) {
        let t = tensor_of(v);
        let u = t.map(|x| 1.0 - x);
        let sum = t.add(&u).unwrap();
        prop_assert!(sum.l2_norm() <= t.l2_norm() + u.l2_norm() + 1e-3);
    }

    fn linf_bounds_every_element(v in vec_of(-100.0f32..100.0, 1..64)) {
        let t = tensor_of(v);
        let m = t.linf_norm();
        for &x in t.as_slice() {
            prop_assert!(x.abs() <= m);
        }
    }

    fn l0_counts_nonzeros_after_clamp(v in vec_of(-100.0f32..100.0, 1..64)) {
        let t = tensor_of(v);
        // Clamping to [0, inf) zeroes exactly the negatives.
        let c = t.map(|x| if x < 0.0 { 0.0 } else { x });
        let expected = t.as_slice().iter().filter(|&&x| x > 0.0).count();
        prop_assert_eq!(c.l0_norm(), expected);
    }

    fn clamp_respects_bounds(
        v in vec_of(-100.0f32..100.0, 1..64),
        lo in -50.0f32..0.0,
        width in 0.0f32..100.0,
    ) {
        let t = tensor_of(v);
        let hi = lo + width;
        let c = t.clamp(lo, hi);
        for &x in c.as_slice() {
            prop_assert!(x >= lo && x <= hi);
        }
    }

    fn shape_linearize_round_trip(dims in vec_of(1usize..6, 1..4), salt in 0usize..1000) {
        let shape = Shape::new(&dims);
        let off = salt % shape.len();
        let idx = shape.delinearize(off).unwrap();
        prop_assert_eq!(shape.linearize(&idx).unwrap(), off);
    }

    fn matmul_distributes_over_addition(seed in 0u64..500) {
        let mut rng = Rng64::new(seed);
        let a = Tensor::randn(&[3, 4], 1.0, rng.as_rng());
        let b = Tensor::randn(&[4, 2], 1.0, rng.as_rng());
        let c = Tensor::randn(&[4, 2], 1.0, rng.as_rng());
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    fn im2col2d_adjoint_identity(seed in 0u64..200) {
        let mut rng = Rng64::new(seed);
        let spec = Conv2dSpec { in_channels: 2, kh: 3, kw: 2, sh: 1, sw: 1, ph: 1, pw: 0 };
        let x = Tensor::randn(&[2, 5, 5], 1.0, rng.as_rng());
        let cols = im2col2d(&x, &spec).unwrap();
        let y = Tensor::randn(cols.dims(), 1.0, rng.as_rng());
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&col2im2d(&y, &spec, 5, 5).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 0.05 * (1.0 + lhs.abs()));
    }

    fn im2col3d_adjoint_identity(seed in 0u64..100) {
        let mut rng = Rng64::new(seed);
        let spec = Conv3dSpec::cubic(1, 2, (1, 1, 1), 1);
        let x = Tensor::randn(&[1, 3, 4, 4], 1.0, rng.as_rng());
        let cols = im2col3d(&x, &spec).unwrap();
        let y = Tensor::randn(cols.dims(), 1.0, rng.as_rng());
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&col2im3d(&y, &spec, 3, 4, 4).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 0.05 * (1.0 + lhs.abs()));
    }

    fn max_pool_backward_preserves_gradient_mass(seed in 0u64..200) {
        let mut rng = Rng64::new(seed);
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, rng.as_rng());
        let spec = Pool3dSpec::spatial(2);
        let (y, argmax) = max_pool3d(&x, &spec).unwrap();
        let g = Tensor::ones(y.dims());
        let gx = max_pool3d_backward(&g, &argmax, &[2, 2, 4, 4]).unwrap();
        prop_assert!((gx.sum() - g.sum()).abs() < 1e-3);
    }

    fn avg_pool_preserves_mean_for_exact_tiling(seed in 0u64..200) {
        let mut rng = Rng64::new(seed);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, rng.as_rng());
        let spec = Pool3dSpec { kt: 2, kh: 2, kw: 2, st: 2, sh: 2, sw: 2 };
        let y = avg_pool3d(&x, &spec).unwrap();
        prop_assert!((x.mean() - y.mean()).abs() < 1e-4);
    }

    fn avg_pool_backward_adjoint(seed in 0u64..200) {
        let mut rng = Rng64::new(seed);
        let spec = Pool3dSpec::spatial(2);
        let x = Tensor::randn(&[1, 2, 4, 6], 1.0, rng.as_rng());
        let y = avg_pool3d(&x, &spec).unwrap();
        let g = Tensor::randn(y.dims(), 1.0, rng.as_rng());
        let lhs = y.dot(&g).unwrap();
        let rhs = x.dot(&avg_pool3d_backward(&g, &spec, &[1, 2, 4, 6]).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 0.05 * (1.0 + lhs.abs()));
    }

    fn rand_uniform_stays_in_range(seed in 0u64..200) {
        let mut rng = Rng64::new(seed);
        let t = Tensor::rand_uniform(&[64], -2.0, 3.0, rng.as_rng());
        for &x in t.as_slice() {
            prop_assert!((-2.0..3.0).contains(&x));
        }
    }
}
