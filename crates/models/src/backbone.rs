use crate::{ModelError, MultiPath, Result};
use duo_nn::{
    AvgPool3d, Conv3d, Flatten, L2Normalize, Layer, Linear, MaxPool3d, Param,
    Parameterized, Relu, Residual, Sequential, TemporalStride,
};
use duo_tensor::{Conv3dSpec, Pool3dSpec, Rng64, Tensor};
use duo_video::{ClipSpec, Video};

/// The backbone families evaluated in the paper.
///
/// Victim models: [`Architecture::I3d`], [`Architecture::Tpn`],
/// [`Architecture::SlowFast`], [`Architecture::Resnet34`].
/// Surrogate models: [`Architecture::C3d`], [`Architecture::Resnet18`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Inflated 3-D convolutions, single pathway, residual block.
    I3d,
    /// Temporal pyramid network: shared trunk, multi-rate temporal branches.
    Tpn,
    /// Two pathways at different frame rates (slow: strided, wide; fast:
    /// full rate, narrow), fused late.
    SlowFast,
    /// Per-frame 2-D residual network (kt = 1), deeper variant.
    Resnet34,
    /// Plain stacked 3-D convolutions (the paper's main surrogate).
    C3d,
    /// Per-frame 2-D residual network, shallower variant (surrogate).
    Resnet18,
}
duo_tensor::impl_to_json!(enum Architecture { I3d, Tpn, SlowFast, Resnet34, C3d, Resnet18 });

impl Architecture {
    /// The four victim architectures of the paper's evaluation.
    pub fn victims() -> [Architecture; 4] {
        [Architecture::Tpn, Architecture::SlowFast, Architecture::I3d, Architecture::Resnet34]
    }

    /// The two surrogate architectures of the paper's evaluation.
    pub fn surrogates() -> [Architecture; 2] {
        [Architecture::C3d, Architecture::Resnet18]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::I3d => "I3D",
            Architecture::Tpn => "TPN",
            Architecture::SlowFast => "SlowFast",
            Architecture::Resnet34 => "Resnet34",
            Architecture::C3d => "C3D",
            Architecture::Resnet18 => "Resnet18",
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Width/feature-size configuration of a backbone.
///
/// The clip geometry is part of the configuration because — following the
/// paper's system diagram — embeddings are produced by *fully-connected
/// feature flattening* of the final convolutional map, so the head's
/// input dimensionality depends on the clip size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BackboneConfig {
    /// Base channel width; deeper stages scale from this.
    pub width: usize,
    /// Output embedding dimensionality (the paper flattens to 768).
    pub feature_dim: usize,
    /// Clip geometry the backbone is built for.
    pub clip: ClipSpec,
}
duo_tensor::impl_to_json!(struct BackboneConfig { width, feature_dim, clip });

impl BackboneConfig {
    /// Paper-shaped configuration: 768-d features over 112×112×16 clips.
    pub fn paper() -> Self {
        BackboneConfig { width: 8, feature_dim: 768, clip: ClipSpec::paper() }
    }

    /// Default experiment configuration for this reproduction.
    pub fn experiment() -> Self {
        BackboneConfig { width: 8, feature_dim: 128, clip: ClipSpec::experiment() }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        BackboneConfig { width: 4, feature_dim: 32, clip: ClipSpec::tiny() }
    }

    /// Returns a copy with a different feature dimension (used by the
    /// Figure 4 surrogate feature-size sweep).
    pub fn with_feature_dim(mut self, dim: usize) -> Self {
        self.feature_dim = dim;
        self
    }

    /// Returns a copy built for a different clip geometry.
    pub fn with_clip(mut self, clip: ClipSpec) -> Self {
        self.clip = clip;
        self
    }
}

/// A video feature extractor: `[C, T, H, W]` clip → L2-normalized `[D]`
/// embedding, with input gradients for transfer attacks.
#[derive(Clone)]
pub struct Backbone {
    arch: Architecture,
    config: BackboneConfig,
    net: Sequential,
}

impl std::fmt::Debug for Backbone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backbone")
            .field("arch", &self.arch)
            .field("config", &self.config)
            .finish()
    }
}

fn conv(in_c: usize, out_c: usize, k: usize, stride: (usize, usize, usize), pad: usize, rng: &mut Rng64) -> Box<dyn Layer> {
    Box::new(Conv3d::new(Conv3dSpec::cubic(in_c, k, stride, pad), out_c, rng))
}

/// Per-frame 2-D convolution expressed as a kt=1 3-D convolution.
fn conv2d(in_c: usize, out_c: usize, k: usize, spatial_stride: usize, rng: &mut Rng64) -> Box<dyn Layer> {
    let spec = Conv3dSpec {
        in_channels: in_c,
        kt: 1,
        kh: k,
        kw: k,
        st: 1,
        sh: spatial_stride,
        sw: spatial_stride,
        pt: 0,
        ph: k / 2,
        pw: k / 2,
    };
    Box::new(Conv3d::new(spec, out_c, rng))
}

fn relu() -> Box<dyn Layer> {
    Box::new(Relu::new())
}

fn identity_block_2d(c: usize, rng: &mut Rng64) -> Box<dyn Layer> {
    let main = Sequential::new(vec![conv2d(c, c, 3, 1, rng), relu(), conv2d(c, c, 3, 1, rng)]);
    Box::new(Residual::identity(main))
}

fn build_resnet(w: usize, depth: usize, rng: &mut Rng64) -> Vec<Box<dyn Layer>> {
    let mut layers: Vec<Box<dyn Layer>> = vec![conv2d(3, w, 3, 2, rng), relu()];
    for _ in 0..depth {
        layers.push(identity_block_2d(w, rng));
        layers.push(relu());
    }
    // Downsampling projection block to double the width.
    let main = Sequential::new(vec![conv2d(w, 2 * w, 3, 2, rng), relu(), conv2d(2 * w, 2 * w, 3, 1, rng)]);
    let shortcut = Sequential::new(vec![conv2d(w, 2 * w, 1, 2, rng)]);
    layers.push(Box::new(Residual::with_shortcut(main, shortcut)));
    layers.push(relu());
    for _ in 0..depth {
        layers.push(identity_block_2d(2 * w, rng));
        layers.push(relu());
    }
    // Spatial 2x pooling keeps the flattened feature-map width manageable
    // while retaining full temporal resolution.
    layers.push(Box::new(AvgPool3d::new(Pool3dSpec::spatial(2))));
    layers
}

impl Backbone {
    /// Builds a backbone of the given architecture.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadConfig`] for zero width or feature size.
    pub fn new(arch: Architecture, config: BackboneConfig, rng: &mut Rng64) -> Result<Self> {
        if config.width == 0 || config.feature_dim == 0 {
            return Err(ModelError::BadConfig(format!(
                "width and feature_dim must be positive, got {config:?}"
            )));
        }
        let w = config.width;
        let trunk: Vec<Box<dyn Layer>> = match arch {
            Architecture::C3d => vec![
                conv(3, w, 3, (1, 2, 2), 1, rng),
                relu(),
                conv(w, 2 * w, 3, (2, 2, 2), 1, rng),
                relu(),
                conv(2 * w, 4 * w, 3, (2, 2, 2), 1, rng),
                relu(),
            ],
            Architecture::I3d => {
                let res_main = Sequential::new(vec![
                    conv(2 * w, 2 * w, 3, (1, 1, 1), 1, rng),
                    relu(),
                    conv(2 * w, 2 * w, 3, (1, 1, 1), 1, rng),
                ]);
                vec![
                    conv(3, w, 3, (1, 2, 2), 1, rng),
                    relu(),
                    Box::new(MaxPool3d::new(Pool3dSpec::spatial(2))) as Box<dyn Layer>,
                    conv(w, 2 * w, 3, (1, 1, 1), 1, rng),
                    relu(),
                    Box::new(Residual::identity(res_main)),
                    relu(),
                    conv(2 * w, 4 * w, 3, (2, 2, 2), 1, rng),
                    relu(),
                ]
            }
            Architecture::Tpn => {
                let branch = |rate: usize, rng: &mut Rng64| -> Sequential {
                    let temporal_conv = Conv3dSpec {
                        in_channels: 2 * w,
                        kt: 2,
                        kh: 3,
                        kw: 3,
                        st: 1,
                        sh: 1,
                        sw: 1,
                        pt: 0,
                        ph: 1,
                        pw: 1,
                    };
                    Sequential::new(vec![
                        Box::new(AvgPool3d::new(Pool3dSpec {
                            kt: rate,
                            kh: 1,
                            kw: 1,
                            st: rate,
                            sh: 1,
                            sw: 1,
                        })) as Box<dyn Layer>,
                        Box::new(Conv3d::new(temporal_conv, w, rng)),
                        relu(),
                        Box::new(Flatten::new()),
                    ])
                };
                let pyramid = MultiPath::new(vec![branch(1, rng), branch(2, rng), branch(4, rng)]);
                vec![
                    conv(3, w, 3, (1, 2, 2), 1, rng),
                    relu(),
                    conv(w, 2 * w, 3, (1, 2, 2), 1, rng),
                    relu(),
                    Box::new(pyramid) as Box<dyn Layer>,
                ]
            }
            Architecture::SlowFast => {
                let mut slow_rng = rng.fork(1);
                let mut fast_rng = rng.fork(2);
                let slow = Sequential::new(vec![
                    Box::new(TemporalStride::new(4)) as Box<dyn Layer>,
                    conv(3, 2 * w, 3, (1, 2, 2), 1, &mut slow_rng),
                    relu(),
                    conv(2 * w, 4 * w, 3, (1, 2, 2), 1, &mut slow_rng),
                    relu(),
                    Box::new(Flatten::new()),
                ]);
                let fast = Sequential::new(vec![
                    conv(3, w, 3, (1, 2, 2), 1, &mut fast_rng),
                    relu(),
                    conv(w, w, 3, (2, 2, 2), 1, &mut fast_rng),
                    relu(),
                    Box::new(Flatten::new()) as Box<dyn Layer>,
                ]);
                vec![Box::new(MultiPath::new(vec![slow, fast]))]
            }
            Architecture::Resnet34 => build_resnet(w, 2, rng),
            Architecture::Resnet18 => build_resnet(w, 1, rng),
        };
        // Following the paper's system diagram, the embedding head is a
        // fully-connected flattening of the final feature map. Its input
        // width depends on the clip geometry, so probe the trunk once.
        let mut net = Sequential::new(trunk);
        net.push(Box::new(Flatten::new()));
        let clip = config.clip;
        let probe = Tensor::zeros(&[clip.channels, clip.frames, clip.height, clip.width]);
        let flat = net.infer(&probe).map_err(|e| {
            ModelError::BadConfig(format!("clip {clip:?} incompatible with {arch}: {e}"))
        })?;
        net.push(Box::new(Linear::new(flat.len(), config.feature_dim, rng)));
        net.push(Box::new(L2Normalize::new()));
        Ok(Backbone { arch, config, net })
    }

    /// The architecture family of this backbone.
    pub fn arch(&self) -> Architecture {
        self.arch
    }

    /// The construction configuration.
    pub fn config(&self) -> BackboneConfig {
        self.config
    }

    /// Output embedding dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.config.feature_dim
    }

    /// Extracts the L2-normalized embedding of a video.
    ///
    /// This is the pure inference path: it takes `&self`, leaves no
    /// forward caches behind, and is bit-identical to
    /// [`Backbone::extract_training`] for the deterministic layers used by
    /// every built-in architecture. Because it is immutable, one backbone
    /// can serve concurrent extractions from many threads.
    ///
    /// # Errors
    ///
    /// Returns an error if the clip geometry is incompatible with the
    /// backbone's downsampling structure.
    pub fn extract(&self, video: &Video) -> Result<Tensor> {
        Ok(self.net.infer(&video.to_model_input())?)
    }

    /// Extracts the embedding from a prepared `[C, T, H, W]` tensor
    /// (pure inference, `&self`).
    ///
    /// # Errors
    ///
    /// Same as [`Backbone::extract`].
    pub fn extract_tensor(&self, input: &Tensor) -> Result<Tensor> {
        Ok(self.net.infer(input)?)
    }

    /// Extracts embeddings for a batch of videos through the network's
    /// batched forward ([`duo_nn::Layer::infer_batch`]), fanning chunks
    /// across up to `workers` threads.
    ///
    /// The batched forward runs the exact same per-item computation as
    /// [`Backbone::extract`] — it only amortizes per-call setup (im2col
    /// workspaces, weight reshapes) across the batch — so the result is
    /// bit-identical to a serial loop. Parallelism and batching only
    /// change wall-clock time, never values. `workers == 0` is treated
    /// as 1. Results are returned in input order.
    ///
    /// # Errors
    ///
    /// Returns the first per-item error in input order, if any.
    pub fn extract_batch(&self, videos: &[&Video], workers: usize) -> Result<Vec<Tensor>> {
        if videos.is_empty() {
            return Ok(Vec::new());
        }
        let workers = workers.max(1).min(videos.len());
        if workers == 1 {
            let inputs: Vec<Tensor> = videos.iter().map(|v| v.to_model_input()).collect();
            return Ok(self.net.infer_batch(&inputs)?);
        }
        let mut slots: Vec<Option<Result<Vec<Tensor>>>> = Vec::new();
        let chunk = videos.len().div_ceil(workers);
        slots.resize_with(videos.chunks(chunk).len(), || None);
        std::thread::scope(|scope| {
            for (vids, slot) in videos.chunks(chunk).zip(slots.iter_mut()) {
                scope.spawn(move || {
                    let inputs: Vec<Tensor> = vids.iter().map(|v| v.to_model_input()).collect();
                    *slot = Some(self.net.infer_batch(&inputs).map_err(Into::into));
                });
            }
        });
        let mut outs = Vec::with_capacity(videos.len());
        for slot in slots {
            outs.extend(slot.expect("every slot filled by its worker")?);
        }
        Ok(outs)
    }

    /// Extracts an embedding through the *training* forward pass, leaving
    /// per-layer caches in place for a subsequent
    /// [`Backbone::input_gradient`] or [`Backbone::backward_params`].
    ///
    /// Produces bit-identical embeddings to [`Backbone::extract`] for the
    /// deterministic layers used by the built-in architectures; the only
    /// difference is the cached state (and dropout masking, for user nets
    /// that include a training-mode [`duo_nn::Dropout`]).
    ///
    /// # Errors
    ///
    /// Same as [`Backbone::extract`].
    pub fn extract_training(&mut self, video: &Video) -> Result<Tensor> {
        Ok(self.net.forward(&video.to_model_input())?)
    }

    /// Training-path variant of [`Backbone::extract_tensor`]: caches the
    /// forward state needed by the backward passes.
    ///
    /// # Errors
    ///
    /// Same as [`Backbone::extract`].
    pub fn extract_tensor_training(&mut self, input: &Tensor) -> Result<Tensor> {
        Ok(self.net.forward(input)?)
    }

    /// Gradient of a scalar loss with respect to the *video pixels*
    /// (`[N, H, W, C]` layout, including the 1/255 input scaling), given
    /// the loss gradient with respect to the embedding.
    ///
    /// Must be called immediately after [`Backbone::extract_training`] on
    /// the same video: the backward pass consumes the forward caches.
    ///
    /// Parameter gradients accumulated by this call are discarded — the
    /// attack differentiates the input, not the weights.
    ///
    /// # Errors
    ///
    /// Returns an error if no forward pass preceded this call or shapes
    /// mismatch.
    pub fn input_gradient(&mut self, video: &Video, grad_feature: &Tensor) -> Result<Tensor> {
        let grad_model = self.net.backward(grad_feature)?;
        // Attacks must not leak gradient state into subsequent training.
        self.net.zero_grad();
        Ok(video.gradient_to_video_layout(&grad_model)?)
    }

    /// Backpropagates a feature-space gradient to accumulate *parameter*
    /// gradients (training path). The input gradient is discarded.
    ///
    /// Must be called immediately after [`Backbone::extract_training`] on
    /// the same video.
    ///
    /// # Errors
    ///
    /// Returns an error if no forward pass preceded this call.
    pub fn backward_params(&mut self, grad_feature: &Tensor) -> Result<()> {
        self.net.backward(grad_feature)?;
        Ok(())
    }

    /// Number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        Parameterized::param_count(&mut self.net)
    }
}

impl Parameterized for Backbone {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_video::{ClipSpec, SyntheticVideoGenerator};

    fn tiny_video() -> Video {
        SyntheticVideoGenerator::new(ClipSpec::tiny(), 3).generate(0, 0)
    }

    #[test]
    fn every_architecture_produces_unit_features() {
        let video = tiny_video();
        for arch in [
            Architecture::I3d,
            Architecture::Tpn,
            Architecture::SlowFast,
            Architecture::Resnet34,
            Architecture::C3d,
            Architecture::Resnet18,
        ] {
            let mut rng = Rng64::new(101);
            let model = Backbone::new(arch, BackboneConfig::tiny(), &mut rng).unwrap();
            let feat = model.extract(&video).unwrap();
            assert_eq!(feat.len(), 32, "{arch}");
            assert!((feat.l2_norm() - 1.0).abs() < 1e-4, "{arch} features must be normalized");
        }
    }

    #[test]
    fn architectures_disagree_on_the_same_input() {
        let video = tiny_video();
        let mut rng = Rng64::new(102);
        let a = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let b = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let fa = a.extract(&video).unwrap();
        let fb = b.extract(&video).unwrap();
        assert!(fa.sq_distance(&fb).unwrap() > 1e-4);
    }

    #[test]
    fn input_gradient_has_video_shape() {
        let video = tiny_video();
        let mut rng = Rng64::new(103);
        let mut model = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let feat = model.extract_training(&video).unwrap();
        let g = model.input_gradient(&video, &feat).unwrap();
        assert_eq!(g.dims(), video.tensor().dims());
        assert!(g.l2_norm() > 0.0, "gradient should be nonzero");
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        // Loss = <feat, c> for a fixed direction c; check d loss / d pixel.
        let video = tiny_video();
        let mut rng = Rng64::new(104);
        let mut model = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let c = Tensor::randn(&[32], 1.0, rng.as_rng());
        let _ = model.extract_training(&video).unwrap();
        let g = model.input_gradient(&video, &c).unwrap();
        let eps = 0.5; // half a pixel step out of 255
        for &probe in &[10usize, 500, 2000] {
            let mut vp = video.clone();
            vp.tensor_mut().as_mut_slice()[probe] += eps;
            let fp = model.extract(&vp).unwrap().dot(&c).unwrap();
            let mut vm = video.clone();
            vm.tensor_mut().as_mut_slice()[probe] -= eps;
            let fm = model.extract(&vm).unwrap().dot(&c).unwrap();
            let num = (fp - fm) / (2.0 * eps);
            let ana = g.as_slice()[probe];
            assert!(
                (num - ana).abs() < 1e-3 + 0.15 * ana.abs().max(num.abs()),
                "probe {probe}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn inference_matches_training_forward_bitwise() {
        let video = tiny_video();
        for arch in [
            Architecture::I3d,
            Architecture::Tpn,
            Architecture::SlowFast,
            Architecture::Resnet34,
            Architecture::C3d,
            Architecture::Resnet18,
        ] {
            let mut rng = Rng64::new(106);
            let mut model = Backbone::new(arch, BackboneConfig::tiny(), &mut rng).unwrap();
            let infer = model.extract(&video).unwrap();
            let train = model.extract_training(&video).unwrap();
            assert_eq!(infer.as_slice(), train.as_slice(), "{arch}: infer must be bit-identical");
        }
    }

    #[test]
    fn batched_extract_is_bit_identical_to_serial() {
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), 3);
        let videos: Vec<Video> = (0u32..7).map(|i| gen.generate(i % 3, i)).collect();
        let refs: Vec<&Video> = videos.iter().collect();
        let mut rng = Rng64::new(107);
        let model = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let serial: Vec<Tensor> = refs.iter().map(|v| model.extract(v).unwrap()).collect();
        for workers in [1, 3, 4, 16] {
            let batched = model.extract_batch(&refs, workers).unwrap();
            assert_eq!(batched.len(), serial.len());
            for (i, (a, b)) in batched.iter().zip(&serial).enumerate() {
                assert_eq!(a.as_slice(), b.as_slice(), "workers={workers} item {i}");
            }
        }
        assert!(model.extract_batch(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn rejects_zero_width() {
        let mut rng = Rng64::new(105);
        let bad = BackboneConfig { width: 0, ..BackboneConfig::tiny() };
        assert!(Backbone::new(Architecture::C3d, bad, &mut rng).is_err());
    }

    #[test]
    fn victims_and_surrogates_partition_architectures() {
        let mut all: Vec<Architecture> = Architecture::victims().to_vec();
        all.extend(Architecture::surrogates());
        assert_eq!(all.len(), 6);
    }
}
