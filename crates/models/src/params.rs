//! Parameter checkpointing for backbones.
//!
//! Victim and surrogate models are expensive to train relative to the
//! attacks that use them, so the library supports exporting a backbone's
//! parameters (in deterministic `visit_params` order) and re-importing
//! them into a freshly constructed backbone of the same architecture and
//! configuration. The on-disk format is a minimal self-describing binary
//! layout (magic, tensor count, then `rank, dims…, f32-LE data` per
//! tensor) — no external serialization dependency required.

use crate::{Backbone, ModelError, Result};
use duo_nn::Parameterized;
use duo_tensor::Tensor;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DUOPARM1";

/// Snapshots every parameter tensor of a backbone, in visit order.
pub fn export_params(backbone: &mut Backbone) -> Vec<Tensor> {
    let mut out = Vec::new();
    backbone.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

/// Restores parameters exported by [`export_params`] into a backbone of
/// the same architecture/configuration.
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] if the tensor count or any shape
/// disagrees with the target backbone.
pub fn import_params(backbone: &mut Backbone, params: &[Tensor]) -> Result<()> {
    let mut idx = 0usize;
    let mut error: Option<ModelError> = None;
    backbone.visit_params(&mut |p| {
        if error.is_some() {
            return;
        }
        match params.get(idx) {
            Some(t) if t.dims() == p.value.dims() => {
                p.value = t.clone();
                p.zero_grad();
            }
            Some(t) => {
                error = Some(ModelError::BadConfig(format!(
                    "parameter {idx}: shape {:?} does not match checkpoint {:?}",
                    p.value.dims(),
                    t.dims()
                )));
            }
            None => {
                error = Some(ModelError::BadConfig(format!(
                    "checkpoint has {} tensors but the backbone expects more",
                    params.len()
                )));
            }
        }
        idx += 1;
    });
    if let Some(e) = error {
        return Err(e);
    }
    if idx != params.len() {
        return Err(ModelError::BadConfig(format!(
            "checkpoint has {} tensors but the backbone consumed {idx}",
            params.len()
        )));
    }
    Ok(())
}

/// Writes a parameter snapshot to a writer in the `DUOPARM1` format.
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] wrapping any I/O failure.
pub fn write_params<W: Write>(params: &[Tensor], mut w: W) -> Result<()> {
    let io = |e: std::io::Error| ModelError::BadConfig(format!("checkpoint write: {e}"));
    w.write_all(MAGIC).map_err(io)?;
    w.write_all(&(params.len() as u64).to_le_bytes()).map_err(io)?;
    for t in params {
        w.write_all(&(t.rank() as u64).to_le_bytes()).map_err(io)?;
        for &d in t.dims() {
            w.write_all(&(d as u64).to_le_bytes()).map_err(io)?;
        }
        for &x in t.as_slice() {
            w.write_all(&x.to_le_bytes()).map_err(io)?;
        }
    }
    Ok(())
}

/// Reads a parameter snapshot written by [`write_params`].
///
/// # Errors
///
/// Returns [`ModelError::BadConfig`] for I/O failures, a bad magic value,
/// or malformed shape data.
pub fn read_params<R: Read>(mut r: R) -> Result<Vec<Tensor>> {
    let io = |e: std::io::Error| ModelError::BadConfig(format!("checkpoint read: {e}"));
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io)?;
    if &magic != MAGIC {
        return Err(ModelError::BadConfig("not a DUOPARM1 checkpoint".into()));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf).map_err(io)?;
    let count = u64::from_le_bytes(u64buf) as usize;
    if count > 1_000_000 {
        return Err(ModelError::BadConfig(format!("implausible tensor count {count}")));
    }
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut u64buf).map_err(io)?;
        let rank = u64::from_le_bytes(u64buf) as usize;
        if rank > 8 {
            return Err(ModelError::BadConfig(format!("implausible tensor rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            r.read_exact(&mut u64buf).map_err(io)?;
            dims.push(u64::from_le_bytes(u64buf) as usize);
        }
        let len: usize = dims.iter().product();
        if len > 256_000_000 {
            return Err(ModelError::BadConfig(format!("implausible tensor length {len}")));
        }
        let mut data = Vec::with_capacity(len);
        let mut f32buf = [0u8; 4];
        for _ in 0..len {
            r.read_exact(&mut f32buf).map_err(io)?;
            data.push(f32::from_le_bytes(f32buf));
        }
        params.push(Tensor::from_vec(data, &dims)?);
    }
    Ok(params)
}

/// Saves a backbone's parameters to a file.
///
/// # Errors
///
/// Propagates checkpoint/IO failures as [`ModelError::BadConfig`].
pub fn save_backbone<P: AsRef<Path>>(backbone: &mut Backbone, path: P) -> Result<()> {
    let file = std::fs::File::create(path)
        .map_err(|e| ModelError::BadConfig(format!("checkpoint create: {e}")))?;
    write_params(&export_params(backbone), std::io::BufWriter::new(file))
}

/// Loads parameters from a file into a backbone of matching shape.
///
/// # Errors
///
/// Propagates checkpoint/IO failures as [`ModelError::BadConfig`].
pub fn load_backbone<P: AsRef<Path>>(backbone: &mut Backbone, path: P) -> Result<()> {
    let file = std::fs::File::open(path)
        .map_err(|e| ModelError::BadConfig(format!("checkpoint open: {e}")))?;
    let params = read_params(std::io::BufReader::new(file))?;
    import_params(backbone, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Architecture, BackboneConfig};
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, SyntheticVideoGenerator};

    #[test]
    fn export_import_round_trips_features() {
        let mut rng = Rng64::new(271);
        let mut a = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let mut b = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let video = SyntheticVideoGenerator::new(ClipSpec::tiny(), 272).generate(0, 0);
        let fa = a.extract(&video).unwrap();
        assert_ne!(fa, b.extract(&video).unwrap(), "fresh models should differ");
        let params = export_params(&mut a);
        import_params(&mut b, &params).unwrap();
        assert_eq!(fa, b.extract(&video).unwrap(), "imported model must match exactly");
    }

    #[test]
    fn binary_round_trip_preserves_tensors() {
        let mut rng = Rng64::new(273);
        let params = vec![
            Tensor::randn(&[2, 3, 4], 1.0, rng.as_rng()),
            Tensor::randn(&[5], 0.5, rng.as_rng()),
            Tensor::zeros(&[1, 1]),
        ];
        let mut buf = Vec::new();
        write_params(&params, &mut buf).unwrap();
        let back = read_params(buf.as_slice()).unwrap();
        assert_eq!(params, back);
    }

    #[test]
    fn rejects_bad_magic_and_shape_mismatch() {
        assert!(read_params(&b"NOTDUO00"[..]).is_err());
        let mut rng = Rng64::new(274);
        let mut c3d = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let mut i3d = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let params = export_params(&mut c3d);
        assert!(import_params(&mut i3d, &params).is_err(), "architectures differ");
        // Truncated checkpoint.
        assert!(import_params(&mut c3d, &params[..1]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut rng = Rng64::new(275);
        let mut a =
            Backbone::new(Architecture::Resnet18, BackboneConfig::tiny(), &mut rng).unwrap();
        let dir = std::env::temp_dir().join("duo_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resnet18.duoparm");
        save_backbone(&mut a, &path).unwrap();
        let mut b =
            Backbone::new(Architecture::Resnet18, BackboneConfig::tiny(), &mut rng).unwrap();
        load_backbone(&mut b, &path).unwrap();
        let video = SyntheticVideoGenerator::new(ClipSpec::tiny(), 276).generate(2, 0);
        assert_eq!(a.extract(&video).unwrap(), b.extract(&video).unwrap());
        let _ = std::fs::remove_file(path);
    }
}
