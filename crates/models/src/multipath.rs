use duo_nn::{Layer, NnError, Param, Parameterized, Result as NnResult, Sequential};
use duo_tensor::Tensor;

/// Runs several branches on the same input and concatenates their rank-1
/// outputs.
///
/// This is the fusion primitive behind the TPN (multi-rate temporal
/// pyramid) and SlowFast (slow + fast pathway) backbones: each branch sees
/// the identical input tensor, produces a feature vector, and the
/// concatenated vector feeds the embedding head. Backward splits the
/// gradient at the recorded branch widths and sums the branch input
/// gradients.
pub struct MultiPath {
    branches: Vec<Sequential>,
    out_lens: Vec<usize>,
    forwarded: bool,
}

impl MultiPath {
    /// Creates a multi-branch layer.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty (a fusion of nothing is a bug).
    pub fn new(branches: Vec<Sequential>) -> Self {
        assert!(!branches.is_empty(), "MultiPath requires at least one branch");
        MultiPath { branches, out_lens: Vec::new(), forwarded: false }
    }

    /// Number of branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }
}

impl std::fmt::Debug for MultiPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiPath").field("branches", &self.branches.len()).finish()
    }
}

impl Layer for MultiPath {
    fn forward(&mut self, input: &Tensor) -> NnResult<Tensor> {
        let mut outs = Vec::with_capacity(self.branches.len());
        self.out_lens.clear();
        for branch in &mut self.branches {
            let y = branch.forward(input)?;
            if y.rank() != 1 {
                return Err(NnError::BadInput {
                    layer: "MultiPath",
                    reason: format!("branches must output rank-1 features, got {:?}", y.dims()),
                });
            }
            self.out_lens.push(y.len());
            outs.push(y);
        }
        self.forwarded = true;
        let total: usize = self.out_lens.iter().sum();
        let mut fused = Tensor::zeros(&[total]);
        let fv = fused.as_mut_slice();
        let mut off = 0;
        for y in &outs {
            fv[off..off + y.len()].copy_from_slice(y.as_slice());
            off += y.len();
        }
        Ok(fused)
    }

    fn infer(&self, input: &Tensor) -> NnResult<Tensor> {
        let mut outs = Vec::with_capacity(self.branches.len());
        let mut total = 0;
        for branch in &self.branches {
            let y = branch.infer(input)?;
            if y.rank() != 1 {
                return Err(NnError::BadInput {
                    layer: "MultiPath",
                    reason: format!("branches must output rank-1 features, got {:?}", y.dims()),
                });
            }
            total += y.len();
            outs.push(y);
        }
        let mut fused = Tensor::zeros(&[total]);
        let fv = fused.as_mut_slice();
        let mut off = 0;
        for y in &outs {
            fv[off..off + y.len()].copy_from_slice(y.as_slice());
            off += y.len();
        }
        Ok(fused)
    }

    fn infer_batch(&self, inputs: &[Tensor]) -> NnResult<Vec<Tensor>> {
        // Run each branch over the whole batch (so its conv layers
        // amortize their batched setup), then concatenate per item in the
        // same branch order as `infer`.
        let mut branch_outs = Vec::with_capacity(self.branches.len());
        for branch in &self.branches {
            let ys = branch.infer_batch(inputs)?;
            for y in &ys {
                if y.rank() != 1 {
                    return Err(NnError::BadInput {
                        layer: "MultiPath",
                        reason: format!("branches must output rank-1 features, got {:?}", y.dims()),
                    });
                }
            }
            branch_outs.push(ys);
        }
        let mut fused_all = Vec::with_capacity(inputs.len());
        for i in 0..inputs.len() {
            let total: usize = branch_outs.iter().map(|ys| ys[i].len()).sum();
            let mut fused = Tensor::zeros(&[total]);
            let fv = fused.as_mut_slice();
            let mut off = 0;
            for ys in &branch_outs {
                let y = &ys[i];
                fv[off..off + y.len()].copy_from_slice(y.as_slice());
                off += y.len();
            }
            fused_all.push(fused);
        }
        Ok(fused_all)
    }

    fn backward(&mut self, grad_out: &Tensor) -> NnResult<Tensor> {
        if !self.forwarded {
            return Err(NnError::MissingForwardCache { layer: "MultiPath" });
        }
        let total: usize = self.out_lens.iter().sum();
        if grad_out.len() != total {
            return Err(NnError::BadInput {
                layer: "MultiPath",
                reason: format!("grad length {} != fused width {total}", grad_out.len()),
            });
        }
        let gv = grad_out.as_slice();
        let mut grad_in: Option<Tensor> = None;
        let mut off = 0;
        for (branch, &len) in self.branches.iter_mut().zip(&self.out_lens) {
            let part = Tensor::from_vec(gv[off..off + len].to_vec(), &[len])
                .expect("slice length matches shape by construction");
            off += len;
            let gi = branch.backward(&part)?;
            grad_in = Some(match grad_in {
                None => gi,
                Some(acc) => acc.add(&gi)?,
            });
        }
        Ok(grad_in.expect("at least one branch by construction"))
    }

    fn name(&self) -> &'static str {
        "MultiPath"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(MultiPath {
            branches: self.branches.clone(),
            out_lens: Vec::new(),
            forwarded: false,
        })
    }
}

impl Parameterized for MultiPath {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for branch in &mut self.branches {
            branch.visit_params(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_nn::{Linear, Relu};
    use duo_tensor::Rng64;

    fn two_branch(rng: &mut Rng64) -> MultiPath {
        MultiPath::new(vec![
            Sequential::new(vec![
                Box::new(Linear::new(3, 2, rng)) as Box<dyn Layer>,
                Box::new(Relu::new()),
            ]),
            Sequential::new(vec![Box::new(Linear::new(3, 4, rng)) as Box<dyn Layer>]),
        ])
    }

    #[test]
    fn forward_concatenates_branch_outputs() {
        let mut rng = Rng64::new(91);
        let mut mp = two_branch(&mut rng);
        let y = mp.forward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(y.dims(), &[6]);
    }

    #[test]
    fn backward_splits_and_sums() {
        let mut rng = Rng64::new(92);
        let mut mp = two_branch(&mut rng);
        let x = Tensor::ones(&[3]);
        mp.forward(&x).unwrap();
        let g = mp.backward(&Tensor::ones(&[6])).unwrap();
        assert_eq!(g.dims(), &[3]);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Rng64::new(93);
        let mut mp = two_branch(&mut rng);
        let x = Tensor::randn(&[3], 1.0, rng.as_rng());
        let err = duo_nn::check_input_gradient(&mut mp, &x, 1e-3).unwrap();
        assert!(err < 1e-2, "relative error {err}");
    }

    #[test]
    fn shared_params_visited_once_per_branch() {
        let mut rng = Rng64::new(94);
        let mut mp = two_branch(&mut rng);
        assert!(mp.param_count() > 0);
        assert_eq!(mp.branch_count(), 2);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = Rng64::new(95);
        let mut mp = two_branch(&mut rng);
        assert!(mp.backward(&Tensor::ones(&[6])).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_branch_list_panics() {
        MultiPath::new(Vec::new());
    }
}
