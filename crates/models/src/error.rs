use duo_nn::NnError;
use duo_tensor::TensorError;
use std::fmt;

/// Error type for model construction, feature extraction and training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A lower-level network operation failed.
    Nn(NnError),
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// The model was constructed with an invalid configuration.
    BadConfig(String),
    /// A label was outside the configured class range.
    BadLabel {
        /// The offending label.
        label: u32,
        /// Number of classes the head was built with.
        classes: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Nn(e) => write!(f, "network error: {e}"),
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::BadConfig(msg) => write!(f, "bad model config: {msg}"),
            ModelError::BadLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Nn(e) => Some(e),
            ModelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<NnError> for ModelError {
    fn from(e: NnError) -> Self {
        ModelError::Nn(e)
    }
}

#[doc(hidden)]
impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}
