use crate::{Backbone, PrototypeHead, Result};
use duo_nn::{Adam, Optimizer, Param, Parameterized};
use duo_tensor::Rng64;
use duo_video::{SyntheticDataset, VideoId};

/// Hyperparameters for metric-learning training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training items.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-accumulation batch size.
    pub batch: usize,
}
duo_tensor::impl_to_json!(struct TrainConfig { epochs, lr, batch });

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 3, lr: 3e-3, batch: 8 }
    }
}

impl TrainConfig {
    /// Fast configuration used by tests.
    pub fn quick() -> Self {
        TrainConfig { epochs: 2, lr: 5e-3, batch: 4 }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Mean loss over the final epoch.
    pub final_loss: f32,
    /// Mean loss over the first epoch (for convergence checks).
    pub initial_loss: f32,
    /// Total labeled samples consumed.
    pub samples_seen: usize,
}
duo_tensor::impl_to_json!(struct TrainReport { final_loss, initial_loss, samples_seen });

/// Bundles a backbone and its loss head so the optimizer steps both.
struct Joint<'a> {
    backbone: &'a mut Backbone,
    head: &'a mut dyn PrototypeHead,
}

impl Parameterized for Joint<'_> {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        self.backbone.visit_params(visitor);
        self.head.visit_params(visitor);
    }
}

/// Trains `backbone` + `head` jointly on the labeled items of a synthetic
/// dataset, the procedure used to fit every victim model in the
/// reproduction (the paper's §V-B victim-training step).
///
/// # Errors
///
/// Propagates model/head errors (shape mismatches, bad labels).
pub fn train_embedding_model(
    backbone: &mut Backbone,
    head: &mut dyn PrototypeHead,
    dataset: &SyntheticDataset,
    items: &[VideoId],
    config: TrainConfig,
    rng: &mut Rng64,
) -> Result<TrainReport> {
    let mut optimizer = Adam::new(config.lr);
    let mut order: Vec<VideoId> = items.to_vec();
    let mut samples_seen = 0usize;
    let mut initial_loss = 0.0f32;
    let mut final_loss = 0.0f32;
    for epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f32;
        let mut in_batch = 0usize;
        for &id in &order {
            let video = dataset.video(id);
            let feat = backbone.extract_training(&video)?;
            let (loss, grad_emb) = head.loss_and_grad(&feat, id.class)?;
            backbone.backward_params(&grad_emb)?;
            epoch_loss += loss;
            samples_seen += 1;
            in_batch += 1;
            if in_batch >= config.batch {
                let mut joint = Joint { backbone, head };
                optimizer.step(&mut joint);
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            let mut joint = Joint { backbone, head };
            optimizer.step(&mut joint);
        }
        let mean = epoch_loss / order.len().max(1) as f32;
        if epoch == 0 {
            initial_loss = mean;
        }
        final_loss = mean;
    }
    Ok(TrainReport { final_loss, initial_loss, samples_seen })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Architecture, Backbone, BackboneConfig, LossKind};
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset};

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng64::new(121);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 1, 2, 0);
        // A small subset of classes keeps the test fast.
        let items: Vec<_> = ds.train().iter().filter(|id| id.class < 6).copied().collect();
        let mut backbone =
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let mut head = LossKind::ArcFace.build_head(ds.num_classes(), 32, &mut rng);
        let config = TrainConfig { epochs: 4, lr: 5e-3, batch: 4 };
        let report = train_embedding_model(
            &mut backbone,
            head.as_mut(),
            &ds,
            &items,
            config,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.samples_seen, items.len() * 4);
        assert!(
            report.final_loss < report.initial_loss,
            "loss should drop: {} -> {}",
            report.initial_loss,
            report.final_loss
        );
    }

    #[test]
    fn trained_model_clusters_classes() {
        let mut rng = Rng64::new(122);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 2, 3, 1);
        let items: Vec<_> = ds.train().iter().filter(|id| id.class < 4).copied().collect();
        let mut backbone =
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let mut head = LossKind::ArcFace.build_head(ds.num_classes(), 32, &mut rng);
        train_embedding_model(
            &mut backbone,
            head.as_mut(),
            &ds,
            &items,
            TrainConfig { epochs: 6, lr: 5e-3, batch: 4 },
            &mut rng,
        )
        .unwrap();
        // Same-class test features should be closer than cross-class.
        let f = |backbone: &mut Backbone, class: u32, inst: u32| {
            backbone
                .extract(&ds.generator().generate(class, inst))
                .unwrap()
        };
        let a0 = f(&mut backbone, 0, 10);
        let a1 = f(&mut backbone, 0, 11);
        let b0 = f(&mut backbone, 1, 10);
        let intra = a0.sq_distance(&a1).unwrap();
        let inter = a0.sq_distance(&b0).unwrap();
        assert!(intra < inter, "intra {intra} should be below inter {inter}");
    }
}
