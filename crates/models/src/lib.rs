//! Video feature-extraction model zoo and metric-learning losses.
//!
//! The paper evaluates DUO against four victim backbones — I3D, TPN,
//! SlowFast and (per-frame) ResNet-34 — trained with three metric losses
//! (ArcFace, Lifted, Angular), and steals surrogates using C3D or
//! ResNet-18 trained with a triplet loss. This crate provides all of them
//! as small-scale but architecturally faithful models on the `duo-nn`
//! substrate:
//!
//! * [`Architecture::I3d`] — single pathway of inflated 3-D convolutions
//!   with a residual block.
//! * [`Architecture::Tpn`] — shared trunk fanning out into a temporal
//!   pyramid of multi-rate branches, fused by concatenation.
//! * [`Architecture::SlowFast`] — a temporally-strided slow pathway with
//!   more channels plus a full-rate fast pathway with fewer, fused late.
//! * [`Architecture::Resnet34`] / [`Architecture::Resnet18`] — per-frame
//!   2-D residual networks (kt = 1 convolutions) with temporal averaging.
//! * [`Architecture::C3d`] — plain stacked 3-D convolutions.
//!
//! Every backbone maps a `[C, T, H, W]` clip to an L2-normalized feature
//! embedding, and supports input gradients for the transfer attack.
//!
//! # Example
//!
//! ```
//! use duo_models::{Architecture, Backbone, BackboneConfig};
//! use duo_video::{ClipSpec, SyntheticVideoGenerator};
//! use duo_tensor::Rng64;
//!
//! let mut rng = Rng64::new(1);
//! let mut model = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng)?;
//! let video = SyntheticVideoGenerator::new(ClipSpec::tiny(), 1).generate(0, 0);
//! let feat = model.extract(&video)?;
//! assert_eq!(feat.len(), BackboneConfig::tiny().feature_dim);
//! # Ok::<(), duo_models::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backbone;
mod error;
mod loss;
mod multipath;
mod params;
mod trainer;

pub use backbone::{Architecture, Backbone, BackboneConfig};
pub use error::ModelError;
pub use loss::{
    AngularHead, ArcFaceHead, LiftedHead, LossKind, PrototypeHead, TripletLoss,
};
pub use multipath::MultiPath;
pub use params::{
    export_params, import_params, load_backbone, read_params, save_backbone, write_params,
};
pub use trainer::{train_embedding_model, TrainConfig, TrainReport};

/// Convenient result alias used across the models crate.
pub type Result<T> = std::result::Result<T, ModelError>;
