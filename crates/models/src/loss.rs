use crate::{ModelError, Result};
use duo_nn::{Param, Parameterized};
use duo_tensor::{Rng64, Tensor};

/// The metric-learning losses used to train victim models (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossKind {
    /// Additive angular margin softmax (ArcFace).
    ArcFace,
    /// Lifted structured embedding loss against class prototypes.
    Lifted,
    /// Tuplet-margin (angular) loss.
    Angular,
}
duo_tensor::impl_to_json!(enum LossKind { ArcFace, Lifted, Angular });

impl LossKind {
    /// All three victim losses in the paper's table order.
    pub fn all() -> [LossKind; 3] {
        [LossKind::ArcFace, LossKind::Lifted, LossKind::Angular]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            LossKind::ArcFace => "ArcFaceLoss",
            LossKind::Lifted => "LiftedLoss",
            LossKind::Angular => "AngularLoss",
        }
    }

    /// Builds the corresponding prototype head.
    pub fn build_head(self, classes: u32, dim: usize, rng: &mut Rng64) -> Box<dyn PrototypeHead> {
        match self {
            LossKind::ArcFace => Box::new(ArcFaceHead::new(classes, dim, rng)),
            LossKind::Lifted => Box::new(LiftedHead::new(classes, dim, rng)),
            LossKind::Angular => Box::new(AngularHead::new(classes, dim, rng)),
        }
    }
}

impl std::fmt::Display for LossKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A trainable loss head holding one prototype vector per class.
///
/// Given an L2-normalized embedding and its class label, the head returns
/// the scalar loss and the gradient with respect to the embedding, while
/// accumulating gradients into its own prototype parameters.
pub trait PrototypeHead: Parameterized + Send {
    /// Computes loss and embedding gradient for a labeled sample.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadLabel`] for out-of-range labels or a shape
    /// error for mismatched embedding dimensions.
    fn loss_and_grad(&mut self, embedding: &Tensor, class: u32) -> Result<(f32, Tensor)>;

    /// Which loss family this head implements.
    fn kind(&self) -> LossKind;
}

/// Shared prototype storage and cosine-similarity plumbing.
struct Prototypes {
    weights: Param,
    classes: u32,
    dim: usize,
}

impl Prototypes {
    fn new(classes: u32, dim: usize, rng: &mut Rng64) -> Self {
        let std = (1.0 / dim as f32).sqrt();
        Prototypes {
            weights: Param::new(Tensor::randn(&[classes as usize, dim], std, rng.as_rng())),
            classes,
            dim,
        }
    }

    fn check(&self, embedding: &Tensor, class: u32) -> Result<()> {
        if class >= self.classes {
            return Err(ModelError::BadLabel { label: class, classes: self.classes });
        }
        if embedding.rank() != 1 || embedding.len() != self.dim {
            return Err(ModelError::BadConfig(format!(
                "embedding shape {:?} does not match head dim {}",
                embedding.dims(),
                self.dim
            )));
        }
        Ok(())
    }

    /// Normalized prototype row `j` and its raw norm.
    fn normalized_row(&self, j: usize) -> (Vec<f32>, f32) {
        let row = &self.weights.value.as_slice()[j * self.dim..(j + 1) * self.dim];
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8);
        (row.iter().map(|x| x / norm).collect(), norm)
    }

    /// Cosine similarity of `e` to every class prototype.
    fn cosines(&self, e: &Tensor) -> Vec<f32> {
        (0..self.classes as usize)
            .map(|j| {
                let (w, _) = self.normalized_row(j);
                w.iter().zip(e.as_slice()).map(|(a, b)| a * b).sum::<f32>().clamp(-0.999, 0.999)
            })
            .collect()
    }

    /// Accumulates `coeff · d cos_j / d w_j` into the prototype gradient.
    fn accumulate_row_grad(&mut self, j: usize, e: &Tensor, cos_j: f32, coeff: f32) {
        let (w_norm, norm) = self.normalized_row(j);
        let grad = &mut self.weights.grad.as_mut_slice()[j * self.dim..(j + 1) * self.dim];
        for ((g, &wi), &ei) in grad.iter_mut().zip(&w_norm).zip(e.as_slice()) {
            // d cos / d w = (e − cos·ŵ) / ‖w‖
            *g += coeff * (ei - cos_j * wi) / norm;
        }
    }
}

// ---------------------------------------------------------------------
// ArcFace
// ---------------------------------------------------------------------

/// ArcFace: softmax cross-entropy with an additive angular margin on the
/// true-class logit (Deng et al., CVPR'19).
pub struct ArcFaceHead {
    proto: Prototypes,
    scale: f32,
    margin: f32,
}

impl ArcFaceHead {
    /// Creates a head with the standard scale 16 and margin 0.3 (reduced
    /// from the face-recognition defaults to suit small synthetic corpora).
    pub fn new(classes: u32, dim: usize, rng: &mut Rng64) -> Self {
        ArcFaceHead { proto: Prototypes::new(classes, dim, rng), scale: 16.0, margin: 0.3 }
    }
}

impl PrototypeHead for ArcFaceHead {
    fn loss_and_grad(&mut self, embedding: &Tensor, class: u32) -> Result<(f32, Tensor)> {
        self.proto.check(embedding, class)?;
        let y = class as usize;
        let cos = self.proto.cosines(embedding);
        let theta_y = cos[y].acos();
        let sin_y = theta_y.sin().max(1e-4);
        let cos_margin = (theta_y + self.margin).cos();
        // Logits with margin applied to the true class.
        let logits: Vec<f32> = cos
            .iter()
            .enumerate()
            .map(|(j, &c)| self.scale * if j == y { cos_margin } else { c })
            .collect();
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|z| (z - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let probs: Vec<f32> = exps.iter().map(|e| e / sum).collect();
        let loss = -(probs[y].max(1e-12)).ln();

        // dL/dz_j = p_j − 1[j=y]; chain to cos_j then to e and w_j.
        let dmargin_dcos = (theta_y + self.margin).sin() / sin_y;
        let mut grad_e = Tensor::zeros(&[self.proto.dim]);
        for (j, &p) in probs.iter().enumerate() {
            let dz = p - if j == y { 1.0 } else { 0.0 };
            let dcos = self.scale * if j == y { dmargin_dcos } else { 1.0 } * dz;
            let (w_norm, _) = self.proto.normalized_row(j);
            for (g, &w) in grad_e.as_mut_slice().iter_mut().zip(&w_norm) {
                *g += dcos * w;
            }
            self.proto.accumulate_row_grad(j, embedding, cos[j], dcos);
        }
        Ok((loss, grad_e))
    }

    fn kind(&self) -> LossKind {
        LossKind::ArcFace
    }
}

impl Parameterized for ArcFaceHead {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.proto.weights);
    }
}

// ---------------------------------------------------------------------
// Lifted structured loss
// ---------------------------------------------------------------------

/// Lifted structured loss against class prototypes (Oh Song et al.,
/// CVPR'16): pull the embedding to its class prototype, push it beyond a
/// margin from the soft-max over all other prototypes.
pub struct LiftedHead {
    proto: Prototypes,
    margin: f32,
}

impl LiftedHead {
    /// Creates a head with margin γ = 1.0 (on squared distances of unit
    /// vectors, which lie in [0, 4]).
    pub fn new(classes: u32, dim: usize, rng: &mut Rng64) -> Self {
        LiftedHead { proto: Prototypes::new(classes, dim, rng), margin: 1.0 }
    }
}

impl PrototypeHead for LiftedHead {
    fn loss_and_grad(&mut self, embedding: &Tensor, class: u32) -> Result<(f32, Tensor)> {
        self.proto.check(embedding, class)?;
        let y = class as usize;
        let cos = self.proto.cosines(embedding);
        // Squared distance between unit vectors: d_j = 2 − 2 cos_j.
        let d: Vec<f32> = cos.iter().map(|c| 2.0 - 2.0 * c).collect();
        let mut neg_terms: Vec<(usize, f32)> = Vec::with_capacity(d.len() - 1);
        let mut max_arg = f32::NEG_INFINITY;
        for (j, &dj) in d.iter().enumerate() {
            if j != y {
                let arg = self.margin - dj;
                max_arg = max_arg.max(arg);
                neg_terms.push((j, arg));
            }
        }
        let lse_sum: f32 = neg_terms.iter().map(|&(_, a)| (a - max_arg).exp()).sum();
        let lse = max_arg + lse_sum.ln();
        let j_val = d[y] + lse;
        if j_val <= 0.0 {
            // Hinge inactive: zero loss, zero gradients.
            return Ok((0.0, Tensor::zeros(&[self.proto.dim])));
        }
        let loss = j_val;
        // dJ/dd_y = 1 ; dJ/dd_j = −q_j (softmax over margin − d).
        let mut grad_e = Tensor::zeros(&[self.proto.dim]);
        let apply = |head: &mut Prototypes, j: usize, dl_dd: f32, grad_e: &mut Tensor| {
            // d d_j / d cos_j = −2.
            let dcos = -2.0 * dl_dd;
            let (w_norm, _) = head.normalized_row(j);
            for (g, &w) in grad_e.as_mut_slice().iter_mut().zip(&w_norm) {
                *g += dcos * w;
            }
            head.accumulate_row_grad(j, embedding, cos[j], dcos);
        };
        apply(&mut self.proto, y, 1.0, &mut grad_e);
        for &(j, arg) in &neg_terms {
            let q = (arg - max_arg).exp() / lse_sum;
            apply(&mut self.proto, j, -q, &mut grad_e);
        }
        Ok((loss, grad_e))
    }

    fn kind(&self) -> LossKind {
        LossKind::Lifted
    }
}

impl Parameterized for LiftedHead {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.proto.weights);
    }
}

// ---------------------------------------------------------------------
// Angular (tuplet-margin) loss
// ---------------------------------------------------------------------

/// Tuplet-margin loss (Yu & Tao, ICCV'19): softplus over scaled cosine
/// gaps between negative prototypes and the margin-rotated true class.
pub struct AngularHead {
    proto: Prototypes,
    scale: f32,
    margin: f32,
}

impl AngularHead {
    /// Creates a head with scale 16 and angular margin 0.2 rad.
    pub fn new(classes: u32, dim: usize, rng: &mut Rng64) -> Self {
        AngularHead { proto: Prototypes::new(classes, dim, rng), scale: 16.0, margin: 0.2 }
    }
}

impl PrototypeHead for AngularHead {
    fn loss_and_grad(&mut self, embedding: &Tensor, class: u32) -> Result<(f32, Tensor)> {
        self.proto.check(embedding, class)?;
        let y = class as usize;
        let cos = self.proto.cosines(embedding);
        let theta_y = cos[y].acos();
        let sin_y = theta_y.sin().max(1e-4);
        // Rotating the anchor toward the prototype: cos(θ_y − m).
        let a = (theta_y - self.margin).cos();
        let mut exp_terms: Vec<(usize, f32)> = Vec::with_capacity(cos.len() - 1);
        let mut total = 0.0f32;
        for (j, &c) in cos.iter().enumerate() {
            if j != y {
                let t = (self.scale * (c - a)).exp();
                exp_terms.push((j, t));
                total += t;
            }
        }
        let loss = (1.0 + total).ln();
        let mut grad_e = Tensor::zeros(&[self.proto.dim]);
        // dL/dcos_j = s·t_j/(1+E) for negatives.
        for &(j, t) in &exp_terms {
            let dcos = self.scale * t / (1.0 + total);
            let (w_norm, _) = self.proto.normalized_row(j);
            for (g, &w) in grad_e.as_mut_slice().iter_mut().zip(&w_norm) {
                *g += dcos * w;
            }
            self.proto.accumulate_row_grad(j, embedding, cos[j], dcos);
        }
        // dL/da = −s·E/(1+E); da/dcos_y = sin(θ_y − m)/sin θ_y.
        let da_dcos = (theta_y - self.margin).sin() / sin_y;
        let dcos_y = -self.scale * total / (1.0 + total) * da_dcos;
        let (w_norm, _) = self.proto.normalized_row(y);
        for (g, &w) in grad_e.as_mut_slice().iter_mut().zip(&w_norm) {
            *g += dcos_y * w;
        }
        self.proto.accumulate_row_grad(y, embedding, cos[y], dcos_y);
        Ok((loss, grad_e))
    }

    fn kind(&self) -> LossKind {
        LossKind::Angular
    }
}

impl Parameterized for AngularHead {
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.proto.weights);
    }
}

// ---------------------------------------------------------------------
// Triplet loss (surrogate stealing)
// ---------------------------------------------------------------------

/// Margin triplet loss on embeddings: `[D(a,p) − D(a,n) + γ]₊` with
/// `D(x,y) = ‖x − y‖²` — the loss the paper uses to steal surrogates
/// (§IV-B1, γ = 0.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripletLoss {
    /// The margin γ.
    pub gamma: f32,
}
duo_tensor::impl_to_json!(struct TripletLoss { gamma });

impl Default for TripletLoss {
    fn default() -> Self {
        TripletLoss { gamma: 0.2 }
    }
}

impl TripletLoss {
    /// Creates a triplet loss with the paper's margin of 0.2.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loss and gradients `(loss, grad_anchor, grad_pos, grad_neg)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the three embeddings disagree in shape.
    pub fn loss_and_grads(
        &self,
        anchor: &Tensor,
        positive: &Tensor,
        negative: &Tensor,
    ) -> Result<(f32, Tensor, Tensor, Tensor)> {
        let d_pos = anchor.sq_distance(positive)?;
        let d_neg = anchor.sq_distance(negative)?;
        let val = d_pos - d_neg + self.gamma;
        if val <= 0.0 {
            let z = Tensor::zeros(anchor.dims());
            return Ok((0.0, z.clone(), z.clone(), z));
        }
        // d/da (‖a−p‖² − ‖a−n‖²) = 2(n − p)
        let ga = negative.sub(positive)?.scale(2.0);
        let gp = positive.sub(anchor)?.scale(2.0);
        let gn = anchor.sub(negative)?.scale(2.0);
        Ok((val, ga, gp, gn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: Vec<f32>) -> Tensor {
        let n = v.len();
        let t = Tensor::from_vec(v, &[n]).unwrap();
        t.scale(1.0 / t.l2_norm())
    }

    fn numeric_grad_e(head: &mut dyn PrototypeHead, e: &Tensor, class: u32) -> Tensor {
        let eps = 1e-3;
        let mut g = Tensor::zeros(e.dims());
        for i in 0..e.len() {
            let mut ep = e.clone();
            ep.as_mut_slice()[i] += eps;
            let (lp, _) = head.loss_and_grad(&ep, class).unwrap();
            let mut em = e.clone();
            em.as_mut_slice()[i] -= eps;
            let (lm, _) = head.loss_and_grad(&em, class).unwrap();
            g.as_mut_slice()[i] = (lp - lm) / (2.0 * eps);
        }
        g
    }

    fn check_head_gradient(mut head: Box<dyn PrototypeHead>) {
        let mut rng = Rng64::new(111);
        let e = unit(Tensor::randn(&[8], 1.0, rng.as_rng()).into_vec());
        // Zero accumulated prototype grads from numeric probing afterwards.
        let numeric = numeric_grad_e(head.as_mut(), &e, 2);
        head.zero_grad();
        let (_, analytic) = head.loss_and_grad(&e, 2).unwrap();
        for (n, a) in numeric.as_slice().iter().zip(analytic.as_slice()) {
            assert!(
                (n - a).abs() < 1e-2 * (1.0 + n.abs().max(a.abs())),
                "{:?}: numeric {n} vs analytic {a}",
                head.kind()
            );
        }
    }

    #[test]
    fn arcface_embedding_gradient_checks() {
        let mut rng = Rng64::new(112);
        check_head_gradient(Box::new(ArcFaceHead::new(5, 8, &mut rng)));
    }

    #[test]
    fn lifted_embedding_gradient_checks() {
        let mut rng = Rng64::new(113);
        check_head_gradient(Box::new(LiftedHead::new(5, 8, &mut rng)));
    }

    #[test]
    fn angular_embedding_gradient_checks() {
        let mut rng = Rng64::new(114);
        check_head_gradient(Box::new(AngularHead::new(5, 8, &mut rng)));
    }

    #[test]
    fn losses_decrease_when_embedding_matches_prototype() {
        // An embedding aligned with its class prototype must incur less
        // loss than an anti-aligned one, for all three heads.
        let mut rng = Rng64::new(115);
        for kind in LossKind::all() {
            let mut head = kind.build_head(4, 8, &mut rng);
            // Extract prototype 1 direction by probing cosines via loss:
            // use the internal convention instead — construct from weights
            // is private, so probe with random vectors.
            let mut best_loss = f32::INFINITY;
            let mut worst_loss = f32::NEG_INFINITY;
            for trial in 0..64 {
                let e = unit(Tensor::randn(&[8], 1.0, Rng64::new(trial).as_rng()).into_vec());
                let (l, _) = head.loss_and_grad(&e, 1).unwrap();
                head.zero_grad();
                best_loss = best_loss.min(l);
                worst_loss = worst_loss.max(l);
            }
            assert!(
                best_loss < worst_loss,
                "{kind}: loss must vary with embedding direction"
            );
        }
    }

    #[test]
    fn heads_reject_bad_labels_and_shapes() {
        let mut rng = Rng64::new(116);
        let mut head = ArcFaceHead::new(3, 8, &mut rng);
        let e = unit(vec![1.0; 8]);
        assert!(matches!(head.loss_and_grad(&e, 3), Err(ModelError::BadLabel { .. })));
        let short = unit(vec![1.0; 4]);
        assert!(head.loss_and_grad(&short, 0).is_err());
    }

    #[test]
    fn triplet_loss_matches_hand_computation() {
        let a = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let p = Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap();
        let n = Tensor::from_vec(vec![0.0, 2.0], &[2]).unwrap();
        let loss = TripletLoss { gamma: 0.2 };
        // d_pos = 1, d_neg = 4 → 1 − 4 + 0.2 < 0 → inactive.
        let (l, ga, _, _) = loss.loss_and_grads(&a, &p, &n).unwrap();
        assert_eq!(l, 0.0);
        assert_eq!(ga.l0_norm(), 0);
        // Swap roles → active: d_pos = 4, d_neg = 1 → 3.2.
        let (l2, ga2, gp2, gn2) = loss.loss_and_grads(&a, &n, &p).unwrap();
        assert!((l2 - 3.2).abs() < 1e-6);
        assert_eq!(ga2.as_slice(), &[2.0, -4.0]); // 2(n − p) with p=n-video, n=p-video
        assert_eq!(gp2.as_slice(), &[0.0, 4.0]);
        assert_eq!(gn2.as_slice(), &[-2.0, 0.0]);
    }

    #[test]
    fn triplet_gradient_matches_finite_difference() {
        let mut rng = Rng64::new(117);
        let a = Tensor::randn(&[6], 1.0, rng.as_rng());
        let p = Tensor::randn(&[6], 1.0, rng.as_rng());
        let n = a.map(|x| x + 0.01); // make the triplet active
        let loss = TripletLoss::new();
        let (l, ga, _, _) = loss.loss_and_grads(&a, &p, &n).unwrap();
        assert!(l > 0.0);
        let eps = 1e-3;
        for i in 0..a.len() {
            let mut ap = a.clone();
            ap.as_mut_slice()[i] += eps;
            let (lp, _, _, _) = loss.loss_and_grads(&ap, &p, &n).unwrap();
            let mut am = a.clone();
            am.as_mut_slice()[i] -= eps;
            let (lm, _, _, _) = loss.loss_and_grads(&am, &p, &n).unwrap();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - ga.as_slice()[i]).abs() < 1e-2);
        }
    }
}
