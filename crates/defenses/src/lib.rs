//! Defenses evaluated against DUO (paper §V-D).
//!
//! Both defenses share one detection principle: apply an input transform
//! that barely changes natural videos but disrupts adversarial
//! perturbations, re-query, and flag the input when the two retrieval
//! lists diverge more than a threshold calibrated to a clean-video
//! false-positive rate.
//!
//! * [`FeatureSqueezing`] (Xu et al., NDSS'18) — bit-depth reduction plus
//!   spatial median smoothing.
//! * [`Noise2Self`] (Batson & Royer, ICML'19) — J-invariant masked
//!   denoising: each pixel is replaced by an estimate computed *without*
//!   looking at itself (donut interpolation), treating adversarial noise
//!   as self-correlated signal that cannot survive the masking.
//!
//! # Example
//!
//! ```no_run
//! use duo_defenses::{Defense, DetectionHarness, FeatureSqueezing};
//! # fn f(mut sys: duo_retrieval::RetrievalSystem,
//! #      clean: Vec<duo_video::Video>, adv: Vec<duo_video::Video>)
//! # -> Result<(), duo_defenses::DefenseError> {
//! let defense = FeatureSqueezing::default();
//! let mut harness = DetectionHarness::calibrate(&mut sys, &defense, &clean, 0.05)?;
//! let rate = harness.detection_rate(&mut sys, &defense, &adv)?;
//! println!("{}: {:.1}% detected", defense.name(), rate);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ensemble;
mod error;
mod harness;
mod noise2self;
mod squeeze;
mod streaming;

pub use ensemble::EnsembleDetector;
pub use error::DefenseError;
pub use harness::DetectionHarness;
pub use noise2self::Noise2Self;
pub use squeeze::FeatureSqueezing;
pub use streaming::{
    ClipSketch, DetectorAction, StreamConfig, StreamDetector, StreamVerdict, SKETCH_CELLS,
    SKETCH_T, SKETCH_X, SKETCH_Y,
};

use duo_video::Video;

/// An input-transformation defense.
pub trait Defense: Send + Sync {
    /// Applies the defensive transform to a query video.
    fn transform(&self, video: &Video) -> Video;

    /// Human-readable defense name.
    fn name(&self) -> &'static str;
}

/// Convenient result alias used across the defenses crate.
pub type Result<T> = std::result::Result<T, DefenseError>;
