use duo_retrieval::RetrievalError;
use std::fmt;

/// Error type for defense evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseError {
    /// The underlying retrieval system failed.
    Retrieval(RetrievalError),
    /// Calibration was requested with no clean samples or an invalid FPR.
    BadCalibration(String),
}

impl fmt::Display for DefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseError::Retrieval(e) => write!(f, "retrieval error: {e}"),
            DefenseError::BadCalibration(msg) => write!(f, "bad calibration: {msg}"),
        }
    }
}

impl std::error::Error for DefenseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DefenseError::Retrieval(e) => Some(e),
            DefenseError::BadCalibration(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<RetrievalError> for DefenseError {
    fn from(e: RetrievalError) -> Self {
        DefenseError::Retrieval(e)
    }
}
