//! Streaming adversarial-query detection over per-account query streams.
//!
//! The offline defenses in this crate ([`crate::DetectionHarness`],
//! [`crate::EnsembleDetector`]) judge a *single* input. A deployed
//! service sees something richer: each account's **stream** of queries.
//! Iterative black-box attacks (DUO's SparseQuery, Vanilla, HEU, the
//! sparse-RL agent) necessarily submit long runs of *near-duplicate*
//! clips — each candidate differs from the last by one small perturbation
//! step — while organic traffic hops between unrelated videos. The
//! [`StreamDetector`] turns that signature into a per-account verdict
//! stream.
//!
//! Three signals are computed per query against a bounded ring of the
//! account's recent query sketches:
//!
//! 1. **Self-similarity** — similarity of the query's [`ClipSketch`] to
//!    the *nearest* ring entry (`max` over the ring of
//!    `1 / (1 + msd / sim_scale)`; 1.0 for an exact duplicate, → 0 for
//!    unrelated clips). Taking the nearest entry rather than the ring
//!    mean keeps the signal sharp when an attacker interleaves decoy
//!    traffic between optimizer candidates.
//! 2. **Near-duplicate count** — ring entries within `near_dup_epsilon`
//!    mean-squared sketch distance, *excluding exact duplicates*: a
//!    legitimate client re-querying the same clip (distance 0) is cache
//!    traffic, while an optimizer's candidates are close but never equal.
//! 3. **Perturbation energy** — the sketch's high-frequency residual;
//!    dense adversarial noise lifts it far above natural video texture.
//!
//! A query is *flagged* when at least [`StreamConfig::flag_votes`] of the
//! three signals fire. Accumulated flags drive the escalation ladder
//! (flag → throttle → reject) encoded in [`DetectorAction`] — see
//! `DESIGN.md` §6i for how `duo-serve` wires the ladder into admission.
//!
//! # Determinism doctrine
//!
//! Every verdict is a **pure function of the account's own observation
//! sequence**: no wall-clock, no RNG, no cross-account state. Window
//! aggregates are recomputed by an O(window) scan of the ring on every
//! observation — never maintained as incremental f32 sums — so the
//! detector is *bit-identical* to a naive recompute over the full history
//! (the reference-model property in `tests/defense_stream_properties.rs`)
//! and verdict streams replay byte-identically at any service worker
//! count.
//!
//! # Example
//!
//! ```
//! use duo_defenses::{ClipSketch, DetectorAction, StreamConfig, StreamDetector};
//! use duo_video::{ClipSpec, SyntheticVideoGenerator};
//!
//! let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), 7);
//! let mut detector = StreamDetector::new(StreamConfig::default());
//!
//! // Distinct clips from different classes: admitted, never flagged.
//! for class in 0..4 {
//!     let sketch = ClipSketch::of(&gen.generate(class, 0));
//!     let verdict = detector.observe(&sketch);
//!     assert!(!verdict.flagged);
//!     assert_eq!(verdict.action, DetectorAction::Admit);
//! }
//! assert_eq!(detector.flags(), 0);
//!
//! // An optimizer's near-duplicate run: the same clip, slightly
//! // perturbed each step, is flagged once the ring has context.
//! let mut video = gen.generate(0, 0);
//! let mut flagged = 0;
//! for step in 0..6 {
//!     let px = video.tensor_mut().as_mut_slice();
//!     px[step * 31] = (px[step * 31] + 25.0).min(255.0);
//!     let verdict = detector.observe(&ClipSketch::of(&video));
//!     flagged += u32::from(verdict.flagged);
//! }
//! assert!(flagged >= 4, "near-duplicate stream must be flagged, got {flagged}");
//! ```

use duo_tensor::{Json, ToJson};
use duo_video::Video;
use std::collections::VecDeque;

/// Temporal cells of the pooled sketch grid.
pub const SKETCH_T: usize = 2;
/// Vertical cells of the pooled sketch grid.
pub const SKETCH_Y: usize = 4;
/// Horizontal cells of the pooled sketch grid.
pub const SKETCH_X: usize = 4;
/// Total sketch cells (`SKETCH_T · SKETCH_Y · SKETCH_X`).
pub const SKETCH_CELLS: usize = SKETCH_T * SKETCH_Y * SKETCH_X;

/// A cheap, deterministic signature of one query clip.
///
/// `cells` is the clip average-pooled onto a fixed
/// `SKETCH_T × SKETCH_Y × SKETCH_X` grid (channel-averaged), in pixel
/// units; `energy` is the mean absolute horizontal neighbor difference —
/// a high-frequency residual that natural (smooth-ish) content keeps low
/// and dense adversarial noise lifts.
///
/// Sketching is a single O(pixels) pass with a fixed accumulation order,
/// so equal videos always produce bit-equal sketches. The sketch is
/// computed *outside* any service lock: it is a pure function of the
/// submitted (already quantized) video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipSketch {
    /// Pooled grid values, `t`-major then `y` then `x`.
    pub cells: [f32; SKETCH_CELLS],
    /// Mean absolute horizontal neighbor difference, pixel units.
    pub energy: f32,
}

impl ClipSketch {
    /// Builds the sketch of a video clip.
    pub fn of(video: &Video) -> ClipSketch {
        let spec = video.spec();
        let (frames, h, w, c) = (spec.frames, spec.height, spec.width, spec.channels);
        let px = video.tensor().as_slice();
        let mut sums = [0.0f32; SKETCH_CELLS];
        let mut counts = [0u32; SKETCH_CELLS];
        let mut energy_sum = 0.0f32;
        let mut energy_n = 0u64;
        for f in 0..frames {
            let ct = (f * SKETCH_T / frames).min(SKETCH_T - 1);
            for y in 0..h {
                let cy = (y * SKETCH_Y / h).min(SKETCH_Y - 1);
                let row = ((f * h) + y) * w * c;
                for x in 0..w {
                    let cx = (x * SKETCH_X / w).min(SKETCH_X - 1);
                    let cell = (ct * SKETCH_Y + cy) * SKETCH_X + cx;
                    let base = row + x * c;
                    for ch in 0..c {
                        let v = px[base + ch];
                        sums[cell] += v;
                        counts[cell] += 1;
                        if x + 1 < w {
                            energy_sum += (v - px[base + c + ch]).abs();
                            energy_n += 1;
                        }
                    }
                }
            }
        }
        let mut cells = [0.0f32; SKETCH_CELLS];
        for (out, (s, n)) in cells.iter_mut().zip(sums.iter().zip(&counts)) {
            *out = s / (*n).max(1) as f32;
        }
        let energy = if energy_n == 0 { 0.0 } else { energy_sum / energy_n as f32 };
        ClipSketch { cells, energy }
    }

    /// Mean squared cell difference to another sketch (pixel² units).
    pub fn msd(&self, other: &ClipSketch) -> f32 {
        let mut acc = 0.0f32;
        for (a, b) in self.cells.iter().zip(&other.cells) {
            let d = a - b;
            acc += d * d;
        }
        acc / SKETCH_CELLS as f32
    }
}

/// Configuration of one per-account [`StreamDetector`].
///
/// The defaults are calibrated on the synthetic corpora: distinct clips
/// sit hundreds of pixel² apart in mean-squared sketch distance, while an
/// optimizer's consecutive candidates sit well under one pixel² — the
/// thresholds below leave orders of magnitude of margin on both sides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Ring capacity: how many recent query sketches each account keeps.
    pub window: usize,
    /// Similarity scale `s` in `sim = 1 / (1 + msd / s)` (pixel² units).
    pub sim_scale: f32,
    /// Nearest-ring-entry similarity at or above which the
    /// self-similarity signal fires.
    pub self_sim_threshold: f32,
    /// Mean-squared sketch distance below which a ring entry counts as a
    /// near-duplicate (exact duplicates, distance 0, never count).
    pub near_dup_epsilon: f32,
    /// Near-duplicates in the ring needed for the near-dup signal to fire.
    pub near_dup_min: u32,
    /// Sketch energy at or above which the perturbation-energy signal
    /// fires.
    pub energy_threshold: f32,
    /// How many of the three signals must fire to flag a query.
    pub flag_votes: u32,
    /// Accumulated flags at which the account enters the throttle band.
    pub throttle_after: u64,
    /// In the throttle band, 1 of every `throttle_stride` observations is
    /// admitted; the rest are rejected with [`DetectorAction::Throttle`].
    pub throttle_stride: u64,
    /// Accumulated flags at which every observation is rejected outright
    /// with [`DetectorAction::Reject`].
    pub reject_after: u64,
    /// Keep the full verdict log in memory (for tests and experiments
    /// that byte-compare verdict streams). Off by default: production
    /// accounts keep only counters.
    pub record_verdicts: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 8,
            sim_scale: 64.0,
            self_sim_threshold: 0.8,
            near_dup_epsilon: 16.0,
            near_dup_min: 1,
            energy_threshold: 40.0,
            flag_votes: 2,
            throttle_after: 8,
            throttle_stride: 4,
            reject_after: 64,
            record_verdicts: false,
        }
    }
}

impl StreamConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DefenseError::BadCalibration`] when the window or
    /// throttle stride is zero, when `flag_votes` is zero or above 3, or
    /// when the ladder is inverted (`reject_after < throttle_after`).
    pub fn validate(&self) -> crate::Result<()> {
        if self.window == 0 || self.throttle_stride == 0 {
            return Err(crate::DefenseError::BadCalibration(
                "stream window and throttle_stride must be positive".into(),
            ));
        }
        if self.flag_votes == 0 || self.flag_votes > 3 {
            return Err(crate::DefenseError::BadCalibration(format!(
                "flag_votes must be in 1..=3, got {}",
                self.flag_votes
            )));
        }
        if self.reject_after < self.throttle_after {
            return Err(crate::DefenseError::BadCalibration(format!(
                "escalation ladder inverted: reject_after {} < throttle_after {}",
                self.reject_after, self.throttle_after
            )));
        }
        Ok(())
    }
}

/// The admission decision attached to one verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorAction {
    /// Admit the query.
    Admit,
    /// Reject this observation; the account is in the throttle band and
    /// this was not its stride slot.
    Throttle,
    /// Reject outright; the account has escalated past `reject_after`.
    Reject,
}

impl DetectorAction {
    fn as_str(self) -> &'static str {
        match self {
            DetectorAction::Admit => "admit",
            DetectorAction::Throttle => "throttle",
            DetectorAction::Reject => "reject",
        }
    }
}

/// One observation's verdict: the three signal values, the flag decision,
/// and the escalation action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamVerdict {
    /// 0-based observation index within the account's stream.
    pub seq: u64,
    /// Similarity to the nearest ring entry (0.0 while the ring is
    /// empty).
    pub self_sim: f32,
    /// Ring entries within `near_dup_epsilon` (exact duplicates excluded).
    pub near_dups: u32,
    /// The query sketch's energy.
    pub energy: f32,
    /// Signals that fired (0..=3).
    pub hits: u32,
    /// Whether this observation was flagged (`hits >= flag_votes`).
    pub flagged: bool,
    /// Accumulated flags *including* this observation.
    pub flags_total: u64,
    /// The escalation ladder's decision for this observation.
    pub action: DetectorAction,
}

impl ToJson for StreamVerdict {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("seq".into(), Json::Int(i128::from(self.seq))),
            ("self_sim".into(), self.self_sim.to_json()),
            ("near_dups".into(), Json::Int(i128::from(self.near_dups))),
            ("energy".into(), self.energy.to_json()),
            ("hits".into(), Json::Int(i128::from(self.hits))),
            ("flagged".into(), Json::Bool(self.flagged)),
            ("flags_total".into(), Json::Int(i128::from(self.flags_total))),
            ("action".into(), Json::Str(self.action.as_str().into())),
        ])
    }
}

/// Per-account sliding-window detector state machine.
///
/// Owned by the serving layer, one per client account, and driven by
/// [`StreamDetector::observe`] on every admission attempt — including
/// attempts the ladder rejects, so the ring always reflects the traffic
/// the account actually sent. See the module docs above for the signal
/// definitions and determinism doctrine.
#[derive(Debug, Clone)]
pub struct StreamDetector {
    config: StreamConfig,
    ring: VecDeque<ClipSketch>,
    seen: u64,
    flags: u64,
    throttle_seen: u64,
    log: Vec<StreamVerdict>,
}

impl StreamDetector {
    /// A fresh detector (empty ring, zero flags).
    pub fn new(config: StreamConfig) -> StreamDetector {
        StreamDetector {
            config,
            ring: VecDeque::with_capacity(config.window),
            seen: 0,
            flags: 0,
            throttle_seen: 0,
            log: Vec::new(),
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Observes one query sketch and returns its verdict.
    ///
    /// The sketch enters the ring whatever the action — rejected traffic
    /// is still traffic the detector has seen. Ring aggregates are
    /// recomputed oldest→newest on every call (see the module docs for
    /// why this, not incremental sums, is load-bearing).
    pub fn observe(&mut self, sketch: &ClipSketch) -> StreamVerdict {
        let cfg = &self.config;
        let mut self_sim = 0.0f32;
        let mut near_dups = 0u32;
        for entry in &self.ring {
            let d = sketch.msd(entry);
            self_sim = self_sim.max(1.0 / (1.0 + d / cfg.sim_scale));
            if d > 0.0 && d <= cfg.near_dup_epsilon {
                near_dups += 1;
            }
        }
        let mut hits = 0u32;
        hits += u32::from(!self.ring.is_empty() && self_sim >= cfg.self_sim_threshold);
        hits += u32::from(near_dups >= cfg.near_dup_min);
        hits += u32::from(sketch.energy >= cfg.energy_threshold);
        let flagged = hits >= cfg.flag_votes;
        if flagged {
            self.flags += 1;
        }
        let action = if self.flags >= cfg.reject_after {
            DetectorAction::Reject
        } else if self.flags >= cfg.throttle_after {
            // Deterministic stride throttling: no wall-clock, just the
            // account's own observation count inside the band.
            let slot = self.throttle_seen;
            self.throttle_seen += 1;
            if slot % cfg.throttle_stride == 0 {
                DetectorAction::Admit
            } else {
                DetectorAction::Throttle
            }
        } else {
            DetectorAction::Admit
        };
        let verdict = StreamVerdict {
            seq: self.seen,
            self_sim,
            near_dups,
            energy: sketch.energy,
            hits,
            flagged,
            flags_total: self.flags,
            action,
        };
        self.ring.push_back(*sketch);
        if self.ring.len() > cfg.window {
            self.ring.pop_front();
        }
        self.seen += 1;
        if cfg.record_verdicts {
            self.log.push(verdict);
        }
        verdict
    }

    /// Observations made so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Accumulated flags.
    pub fn flags(&self) -> u64 {
        self.flags
    }

    /// The recorded verdict log (empty unless
    /// [`StreamConfig::record_verdicts`] is set).
    pub fn verdicts(&self) -> &[StreamVerdict] {
        &self.log
    }

    /// Renders the recorded verdict log as one JSON array string — the
    /// byte-comparable replay artifact the property suite locks.
    pub fn verdicts_json(&self) -> String {
        let rows: Vec<Json> = self.log.iter().map(ToJson::to_json).collect();
        Json::Array(rows).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_video::{ClipSpec, SyntheticVideoGenerator};

    fn sketches(seed: u64) -> (ClipSketch, ClipSketch, ClipSketch) {
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), seed);
        let a = gen.generate(0, 0);
        let b = gen.generate(5, 0);
        let mut a_perturbed = a.clone();
        for (i, px) in a_perturbed.tensor_mut().as_mut_slice().iter_mut().enumerate() {
            if i % 97 == 0 {
                *px = (*px + 20.0).min(255.0);
            }
        }
        (ClipSketch::of(&a), ClipSketch::of(&b), ClipSketch::of(&a_perturbed))
    }

    #[test]
    fn sketch_distances_separate_duplicates_from_distinct_clips() {
        let (a, b, a_p) = sketches(31);
        assert_eq!(a.msd(&a), 0.0, "self distance must be exactly zero");
        let near = a.msd(&a_p);
        let far = a.msd(&b);
        assert!(near < 16.0, "perturbed duplicate too far: {near}");
        assert!(far > 100.0, "distinct clips too close: {far}");
    }

    #[test]
    fn near_duplicate_stream_flags_and_escalates() {
        let cfg = StreamConfig { throttle_after: 3, reject_after: 6, ..Default::default() };
        let mut det = StreamDetector::new(cfg);
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), 32);
        let mut video = gen.generate(0, 0);
        let mut actions = Vec::new();
        for step in 0..12usize {
            let px = video.tensor_mut().as_mut_slice();
            px[(step * 53) % px.len()] = (px[(step * 53) % px.len()] + 30.0).min(255.0);
            actions.push(det.observe(&ClipSketch::of(&video)).action);
        }
        assert!(det.flags() >= 6, "stream must accumulate flags, got {}", det.flags());
        assert_eq!(*actions.last().unwrap(), DetectorAction::Reject);
        assert!(actions.contains(&DetectorAction::Throttle), "{actions:?}");
    }

    #[test]
    fn distinct_traffic_is_never_flagged() {
        let mut det = StreamDetector::new(StreamConfig::default());
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), 33);
        for class in 0..12 {
            let v = det.observe(&ClipSketch::of(&gen.generate(class, class % 3)));
            assert!(!v.flagged, "clean distinct clip flagged: {v:?}");
            assert_eq!(v.action, DetectorAction::Admit);
        }
        assert_eq!(det.flags(), 0);
    }

    #[test]
    fn exact_duplicates_alone_do_not_flag() {
        // A client legitimately re-querying the same clip: self-sim fires
        // (distance 0 ⇒ sim 1) but near-dup excludes exact duplicates, so
        // with the default 2-vote rule the stream stays clean.
        let mut det = StreamDetector::new(StreamConfig::default());
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), 34);
        let s = ClipSketch::of(&gen.generate(2, 0));
        for _ in 0..10 {
            let v = det.observe(&s);
            assert!(!v.flagged, "exact replay flagged: {v:?}");
        }
    }

    #[test]
    fn verdict_log_only_kept_when_recording() {
        let (a, b, _) = sketches(35);
        let mut silent = StreamDetector::new(StreamConfig::default());
        silent.observe(&a);
        silent.observe(&b);
        assert!(silent.verdicts().is_empty());
        let mut recording =
            StreamDetector::new(StreamConfig { record_verdicts: true, ..Default::default() });
        recording.observe(&a);
        recording.observe(&b);
        assert_eq!(recording.verdicts().len(), 2);
        let json = recording.verdicts_json();
        assert!(json.starts_with('[') && json.contains("\"action\":\"admit\""), "{json}");
    }

    #[test]
    fn config_validation_rejects_degenerate_ladders() {
        assert!(StreamConfig { window: 0, ..Default::default() }.validate().is_err());
        assert!(StreamConfig { throttle_stride: 0, ..Default::default() }.validate().is_err());
        assert!(StreamConfig { flag_votes: 0, ..Default::default() }.validate().is_err());
        assert!(StreamConfig { flag_votes: 4, ..Default::default() }.validate().is_err());
        assert!(StreamConfig { throttle_after: 9, reject_after: 8, ..Default::default() }
            .validate()
            .is_err());
        assert!(StreamConfig::default().validate().is_ok());
    }
}
