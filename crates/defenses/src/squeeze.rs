use crate::Defense;
use duo_video::Video;

/// Feature squeezing (Xu et al., NDSS'18): reduce color bit depth, then
/// median-smooth each frame spatially. Adversarial perturbations that
/// live in the low-order bits or isolated pixels are erased; natural
/// content survives nearly unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureSqueezing {
    /// Bits of color depth to keep (paper default 4).
    pub bits: u8,
    /// Median filter half-width (1 ⇒ 3×3 window).
    pub median_radius: usize,
}
duo_tensor::impl_to_json!(struct FeatureSqueezing { bits, median_radius });

impl Default for FeatureSqueezing {
    fn default() -> Self {
        FeatureSqueezing { bits: 4, median_radius: 1 }
    }
}

impl FeatureSqueezing {
    fn squeeze_depth(&self, value: f32) -> f32 {
        let levels = (1u32 << self.bits) as f32 - 1.0;
        ((value / 255.0 * levels).round() / levels * 255.0).clamp(0.0, 255.0)
    }
}

impl Defense for FeatureSqueezing {
    fn transform(&self, video: &Video) -> Video {
        let spec = video.spec();
        let (n, h, w, c) = (spec.frames, spec.height, spec.width, spec.channels);
        let mut out = video.clone();
        // Pass 1: bit-depth reduction.
        out.tensor_mut().map_inplace(|x| self.squeeze_depth(x));
        if self.median_radius == 0 {
            return out;
        }
        // Pass 2: spatial median smoothing per frame/channel.
        let src = out.tensor().as_slice().to_vec();
        let dst = out.tensor_mut().as_mut_slice();
        let r = self.median_radius as isize;
        let mut window = Vec::with_capacity(((2 * r + 1) * (2 * r + 1)) as usize);
        for f in 0..n {
            for y in 0..h {
                for x in 0..w {
                    for ch in 0..c {
                        window.clear();
                        for dy in -r..=r {
                            for dx in -r..=r {
                                let yy = y as isize + dy;
                                let xx = x as isize + dx;
                                if yy >= 0 && (yy as usize) < h && xx >= 0 && (xx as usize) < w {
                                    window.push(
                                        src[(((f * h + yy as usize) * w) + xx as usize) * c + ch],
                                    );
                                }
                            }
                        }
                        window.sort_by(f32::total_cmp);
                        dst[(((f * h + y) * w) + x) * c + ch] = window[window.len() / 2];
                    }
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "feature squeezing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_video::{ClipSpec, SyntheticVideoGenerator};

    #[test]
    fn bit_depth_reduction_quantizes_levels() {
        let fs = FeatureSqueezing { bits: 1, median_radius: 0 };
        let mut v = Video::zeros(ClipSpec::tiny());
        v.set_pixel(0, 0, 0, 0, 100.0).unwrap();
        v.set_pixel(0, 0, 1, 0, 200.0).unwrap();
        let out = fs.transform(&v);
        // 1 bit: only 0 and 255 survive.
        assert_eq!(out.pixel(0, 0, 0, 0).unwrap(), 0.0);
        assert_eq!(out.pixel(0, 0, 1, 0).unwrap(), 255.0);
    }

    #[test]
    fn median_removes_isolated_spikes() {
        let fs = FeatureSqueezing { bits: 8, median_radius: 1 };
        let mut v = Video::zeros(ClipSpec::tiny());
        v.set_pixel(2, 5, 5, 1, 255.0).unwrap();
        let out = fs.transform(&v);
        assert_eq!(out.pixel(2, 5, 5, 1).unwrap(), 0.0, "isolated spike must be erased");
    }

    #[test]
    fn natural_video_survives_roughly_unchanged() {
        let fs = FeatureSqueezing::default();
        let v = SyntheticVideoGenerator::new(ClipSpec::tiny(), 13).generate(0, 0);
        let out = fs.transform(&v);
        let delta = out.tensor().sub(v.tensor()).unwrap();
        let mean_change = delta.l1_norm() / delta.len() as f32;
        assert!(mean_change < 20.0, "mean change {mean_change} too large for natural input");
    }

    #[test]
    fn output_stays_in_range() {
        let fs = FeatureSqueezing::default();
        let v = SyntheticVideoGenerator::new(ClipSpec::tiny(), 14).generate(1, 0);
        let out = fs.transform(&v);
        assert!(out.tensor().min() >= 0.0 && out.tensor().max() <= 255.0);
    }
}
