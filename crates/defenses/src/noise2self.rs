use crate::Defense;
use duo_video::Video;

/// Noise2Self-style J-invariant denoising (Batson & Royer, ICML'19).
///
/// The paper's defense trains a self-supervised denoiser; the J-invariant
/// principle it relies on is that each pixel is predicted *without seeing
/// itself*. This implementation uses the classic training-free J-invariant
/// estimator from the same paper's baselines: every pixel is replaced by
/// the mean of its spatial "donut" neighbourhood (excluding itself),
/// optionally blended with the original to control strength. Adversarial
/// energy concentrated in individual pixels cannot survive the masking,
/// while natural content (spatially smooth) does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Noise2Self {
    /// Neighbourhood half-width (1 ⇒ 3×3 donut of 8 neighbours).
    pub radius: usize,
    /// Blend factor in `[0, 1]`: 1 = fully denoised, 0 = identity.
    pub strength: f32,
}
duo_tensor::impl_to_json!(struct Noise2Self { radius, strength });

impl Default for Noise2Self {
    fn default() -> Self {
        Noise2Self { radius: 1, strength: 1.0 }
    }
}

impl Defense for Noise2Self {
    fn transform(&self, video: &Video) -> Video {
        let spec = video.spec();
        let (n, h, w, c) = (spec.frames, spec.height, spec.width, spec.channels);
        let src = video.tensor().as_slice().to_vec();
        let mut out = video.clone();
        let dst = out.tensor_mut().as_mut_slice();
        let r = self.radius as isize;
        for f in 0..n {
            for y in 0..h {
                for x in 0..w {
                    for ch in 0..c {
                        let mut sum = 0.0f32;
                        let mut count = 0u32;
                        for dy in -r..=r {
                            for dx in -r..=r {
                                if dy == 0 && dx == 0 {
                                    continue; // J-invariance: never read self
                                }
                                let yy = y as isize + dy;
                                let xx = x as isize + dx;
                                if yy >= 0 && (yy as usize) < h && xx >= 0 && (xx as usize) < w {
                                    sum += src
                                        [(((f * h + yy as usize) * w) + xx as usize) * c + ch];
                                    count += 1;
                                }
                            }
                        }
                        let idx = (((f * h + y) * w) + x) * c + ch;
                        let denoised = if count > 0 { sum / count as f32 } else { src[idx] };
                        dst[idx] = ((1.0 - self.strength) * src[idx]
                            + self.strength * denoised)
                            .clamp(0.0, 255.0);
                    }
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "Noise2Self"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, SyntheticVideoGenerator};

    #[test]
    fn isolated_pixel_does_not_survive() {
        let d = Noise2Self::default();
        let mut v = Video::zeros(ClipSpec::tiny());
        v.set_pixel(1, 4, 4, 0, 255.0).unwrap();
        let out = d.transform(&v);
        // The spike is replaced by the mean of its zero neighbours.
        assert_eq!(out.pixel(1, 4, 4, 0).unwrap(), 0.0);
    }

    #[test]
    fn denoising_reduces_gaussian_noise_energy() {
        let spec = ClipSpec::tiny();
        let gen = SyntheticVideoGenerator::new(spec, 15).with_noise_sigma(0.0);
        let clean = gen.generate(0, 0);
        let mut rng = Rng64::new(241);
        let mut noisy = clean.clone();
        for x in noisy.tensor_mut().as_mut_slice() {
            *x = (*x + 20.0 * rng.normal()).clamp(0.0, 255.0);
        }
        let d = Noise2Self::default();
        let denoised = d.transform(&noisy);
        let err_before = noisy.tensor().sq_distance(clean.tensor()).unwrap();
        let err_after = denoised.tensor().sq_distance(clean.tensor()).unwrap();
        assert!(err_after < err_before, "denoising must reduce error: {err_before} -> {err_after}");
    }

    #[test]
    fn zero_strength_is_identity() {
        let d = Noise2Self { radius: 1, strength: 0.0 };
        let v = SyntheticVideoGenerator::new(ClipSpec::tiny(), 16).generate(2, 0);
        assert_eq!(d.transform(&v), v);
    }

    #[test]
    fn output_stays_in_range() {
        let d = Noise2Self::default();
        let v = SyntheticVideoGenerator::new(ClipSpec::tiny(), 17).generate(3, 0);
        let out = d.transform(&v);
        assert!(out.tensor().min() >= 0.0 && out.tensor().max() <= 255.0);
    }
}
