use crate::{Defense, DefenseError, Result};
use duo_retrieval::{ndcg_cooccurrence, RetrievalSystem};
use duo_video::Video;

/// Detection harness: flags a query as adversarial when its retrieval
/// list diverges from the list of its defensively transformed copy.
///
/// The divergence score is `1 − ℍ(R^m(v), R^m(T(v)))` with ℍ the NDCG
/// co-occurrence similarity; the threshold is calibrated on clean videos
/// to a target false-positive rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionHarness {
    threshold: f32,
}

impl DetectionHarness {
    /// Creates a harness with an explicit threshold in `[0, 1]`.
    pub fn with_threshold(threshold: f32) -> Self {
        DetectionHarness { threshold }
    }

    /// The current decision threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Divergence score of one video under the defense (0 = identical
    /// lists, 1 = disjoint).
    ///
    /// # Errors
    ///
    /// Propagates retrieval failures.
    pub fn score(
        system: &mut RetrievalSystem,
        defense: &dyn Defense,
        video: &Video,
    ) -> Result<f32> {
        let raw = system.retrieve(video)?;
        let squeezed = system.retrieve(&defense.transform(video))?;
        Ok(1.0 - ndcg_cooccurrence(&raw, &squeezed))
    }

    /// Calibrates the threshold so that at most `fpr` of the clean videos
    /// are flagged (the usual deployment procedure for both defenses).
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::BadCalibration`] for an empty clean set or
    /// an out-of-range FPR.
    pub fn calibrate(
        system: &mut RetrievalSystem,
        defense: &dyn Defense,
        clean: &[Video],
        fpr: f32,
    ) -> Result<Self> {
        if clean.is_empty() {
            return Err(DefenseError::BadCalibration("need clean videos to calibrate".into()));
        }
        if !(0.0..=1.0).contains(&fpr) {
            return Err(DefenseError::BadCalibration(format!("fpr {fpr} outside [0,1]")));
        }
        let mut scores = Vec::with_capacity(clean.len());
        for v in clean {
            scores.push(Self::score(system, defense, v)?);
        }
        scores.sort_by(f32::total_cmp);
        // The threshold sits at the (1−fpr) quantile of clean scores, with
        // a small epsilon so scores exactly at the quantile pass.
        let idx = (((1.0 - fpr) * (scores.len() - 1) as f32).round() as usize)
            .min(scores.len() - 1);
        Ok(DetectionHarness { threshold: scores[idx] + 1e-6 })
    }

    /// Whether one video is flagged as adversarial.
    ///
    /// # Errors
    ///
    /// Propagates retrieval failures.
    pub fn is_flagged(
        &self,
        system: &mut RetrievalSystem,
        defense: &dyn Defense,
        video: &Video,
    ) -> Result<bool> {
        Ok(Self::score(system, defense, video)? > self.threshold)
    }

    /// Detection rate (%) over a batch of adversarial videos — the paper's
    /// Table X quantity.
    ///
    /// # Errors
    ///
    /// Propagates retrieval failures.
    pub fn detection_rate(
        &mut self,
        system: &mut RetrievalSystem,
        defense: &dyn Defense,
        adversarial: &[Video],
    ) -> Result<f32> {
        if adversarial.is_empty() {
            return Ok(0.0);
        }
        let mut flagged = 0usize;
        for v in adversarial {
            if self.is_flagged(system, defense, v)? {
                flagged += 1;
            }
        }
        Ok(100.0 * flagged as f32 / adversarial.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeatureSqueezing, Noise2Self};
    use duo_models::{Architecture, Backbone, BackboneConfig};
    use duo_retrieval::RetrievalConfig;
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, DatasetKind, SyntheticDataset, VideoId};

    fn setup() -> (RetrievalSystem, SyntheticDataset) {
        let mut rng = Rng64::new(251);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 10, 1, 1);
        let gallery: Vec<_> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
        let backbone = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            backbone,
            &ds,
            &gallery,
            RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        (sys, ds)
    }

    #[test]
    fn calibration_respects_clean_fpr() {
        let (mut sys, ds) = setup();
        let clean: Vec<Video> =
            (0..6).map(|c| ds.video(VideoId { class: c, instance: 0 })).collect();
        let defense = FeatureSqueezing::default();
        let harness = DetectionHarness::calibrate(&mut sys, &defense, &clean, 0.2).unwrap();
        let mut flagged = 0;
        for v in &clean {
            if harness.is_flagged(&mut sys, &defense, v).unwrap() {
                flagged += 1;
            }
        }
        assert!(flagged <= 2, "at 20% FPR no more than ~1 of 6 clean videos flags, got {flagged}");
    }

    #[test]
    fn dense_noise_is_detected_more_than_clean() {
        let (mut sys, ds) = setup();
        let clean: Vec<Video> =
            (0..5).map(|c| ds.video(VideoId { class: c, instance: 0 })).collect();
        let defense = Noise2Self::default();
        // Heavy dense noise = a crude stand-in for a dense AE.
        let mut rng = Rng64::new(252);
        let noisy: Vec<Video> = clean
            .iter()
            .map(|v| {
                let mut n = v.clone();
                for x in n.tensor_mut().as_mut_slice() {
                    *x = (*x + 35.0 * rng.normal()).clamp(0.0, 255.0);
                }
                n
            })
            .collect();
        let mut clean_sum = 0.0;
        let mut noisy_sum = 0.0;
        for (c, n) in clean.iter().zip(&noisy) {
            clean_sum += DetectionHarness::score(&mut sys, &defense, c).unwrap();
            noisy_sum += DetectionHarness::score(&mut sys, &defense, n).unwrap();
        }
        assert!(
            noisy_sum >= clean_sum,
            "noisy queries should diverge at least as much: clean {clean_sum} vs noisy {noisy_sum}"
        );
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let (mut sys, _) = setup();
        let defense = FeatureSqueezing::default();
        assert!(DetectionHarness::calibrate(&mut sys, &defense, &[], 0.05).is_err());
        let mut harness = DetectionHarness::with_threshold(0.5);
        assert_eq!(harness.detection_rate(&mut sys, &defense, &[]).ok(), Some(0.0));
        let _ = harness;
    }

    #[test]
    fn threshold_accessor_round_trips() {
        let h = DetectionHarness::with_threshold(0.42);
        assert_eq!(h.threshold(), 0.42);
    }
}
