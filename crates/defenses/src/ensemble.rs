//! The paper's *proposed* defense (§V-D): "ensemble models built from
//! multiple backbones would be more robust against most AE attacks, DUO
//! included."
//!
//! [`EnsembleDetector`] implements that idea as a cross-model agreement
//! check: a secondary backbone of a *different architecture* indexes the
//! same gallery, and a query is flagged when the primary service's
//! retrieval list disagrees with the secondary's beyond a clean-calibrated
//! threshold. Adversarial perturbations are optimized against (a surrogate
//! of) the primary model and transfer imperfectly to the secondary, so
//! they widen exactly the gap this detector measures.

use crate::{DefenseError, Result};
use duo_models::Backbone;
use duo_retrieval::{ndcg_cooccurrence, RetrievalSystem};
use duo_tensor::Tensor;
use duo_video::{SyntheticDataset, Video, VideoId};

/// Cross-backbone agreement detector over a shared gallery.
pub struct EnsembleDetector {
    secondary: Backbone,
    gallery: Vec<(VideoId, Tensor)>,
    m: usize,
    threshold: f32,
}

impl std::fmt::Debug for EnsembleDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleDetector")
            .field("secondary", &self.secondary.arch())
            .field("gallery", &self.gallery.len())
            .field("m", &self.m)
            .field("threshold", &self.threshold)
            .finish()
    }
}

impl EnsembleDetector {
    /// Indexes the gallery under the secondary backbone.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::BadCalibration`] for an empty gallery and
    /// propagates feature-extraction failures.
    pub fn build(
        secondary: Backbone,
        dataset: &SyntheticDataset,
        gallery_ids: &[VideoId],
        m: usize,
    ) -> Result<Self> {
        if gallery_ids.is_empty() || m == 0 {
            return Err(DefenseError::BadCalibration(
                "ensemble detector needs a non-empty gallery and positive m".into(),
            ));
        }
        let mut gallery = Vec::with_capacity(gallery_ids.len());
        for &id in gallery_ids {
            let feat = secondary
                .extract(&dataset.video(id))
                .map_err(|e| DefenseError::BadCalibration(format!("secondary extract: {e}")))?;
            gallery.push((id, feat));
        }
        Ok(EnsembleDetector { secondary, gallery, m, threshold: 0.5 })
    }

    /// The secondary model's own top-`m` list for a query.
    fn secondary_retrieve(&mut self, video: &Video) -> Result<Vec<VideoId>> {
        let q = self
            .secondary
            .extract(video)
            .map_err(|e| DefenseError::BadCalibration(format!("secondary extract: {e}")))?;
        let mut scored: Vec<(VideoId, f32)> = self
            .gallery
            .iter()
            .map(|(id, feat)| (*id, feat.sq_distance(&q).expect("gallery dims match")))
            .collect();
        scored.sort_by(|a, b| {
            a.1.total_cmp(&b.1)
                .then_with(|| (a.0.class, a.0.instance).cmp(&(b.0.class, b.0.instance)))
        });
        scored.truncate(self.m);
        Ok(scored.into_iter().map(|(id, _)| id).collect())
    }

    /// Disagreement score in `[0, 1]` between the primary service's list
    /// and the secondary model's list (0 = full agreement).
    ///
    /// # Errors
    ///
    /// Propagates retrieval failures.
    pub fn score(&mut self, primary: &mut RetrievalSystem, video: &Video) -> Result<f32> {
        let primary_list = primary.retrieve(video)?;
        self.score_against(&primary_list, video)
    }

    /// Disagreement score against a retrieval list obtained elsewhere —
    /// e.g. from a `duo-serve` client, so the detector composes with the
    /// live serving surface instead of requiring in-process
    /// [`RetrievalSystem`] access.
    ///
    /// # Errors
    ///
    /// Propagates secondary feature-extraction failures.
    pub fn score_against(&mut self, primary_list: &[VideoId], video: &Video) -> Result<f32> {
        let secondary_list = self.secondary_retrieve(video)?;
        Ok(1.0 - ndcg_cooccurrence(primary_list, &secondary_list))
    }

    /// Whether a query is flagged, judged against an externally obtained
    /// primary retrieval list (see [`EnsembleDetector::score_against`]).
    ///
    /// # Errors
    ///
    /// Propagates secondary feature-extraction failures.
    pub fn is_flagged_against(
        &mut self,
        primary_list: &[VideoId],
        video: &Video,
    ) -> Result<bool> {
        Ok(self.score_against(primary_list, video)? > self.threshold)
    }

    /// Overrides the decision threshold (e.g. from a calibration done
    /// against served lists rather than an in-process system).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = threshold;
    }

    /// Calibrates the flag threshold to a clean false-positive rate.
    ///
    /// # Errors
    ///
    /// Returns [`DefenseError::BadCalibration`] for an empty clean set or
    /// an FPR outside `[0, 1]`.
    pub fn calibrate(
        &mut self,
        primary: &mut RetrievalSystem,
        clean: &[Video],
        fpr: f32,
    ) -> Result<()> {
        if clean.is_empty() {
            return Err(DefenseError::BadCalibration("need clean videos to calibrate".into()));
        }
        if !(0.0..=1.0).contains(&fpr) {
            return Err(DefenseError::BadCalibration(format!("fpr {fpr} outside [0,1]")));
        }
        let mut scores = Vec::with_capacity(clean.len());
        for v in clean {
            scores.push(self.score(primary, v)?);
        }
        scores.sort_by(f32::total_cmp);
        let idx = (((1.0 - fpr) * (scores.len() - 1) as f32).round() as usize)
            .min(scores.len() - 1);
        self.threshold = scores[idx] + 1e-6;
        Ok(())
    }

    /// The current decision threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Whether a query is flagged as adversarial.
    ///
    /// # Errors
    ///
    /// Propagates retrieval failures.
    pub fn is_flagged(&mut self, primary: &mut RetrievalSystem, video: &Video) -> Result<bool> {
        Ok(self.score(primary, video)? > self.threshold)
    }

    /// Detection rate (%) over a batch of adversarial videos.
    ///
    /// # Errors
    ///
    /// Propagates retrieval failures.
    pub fn detection_rate(
        &mut self,
        primary: &mut RetrievalSystem,
        adversarial: &[Video],
    ) -> Result<f32> {
        if adversarial.is_empty() {
            return Ok(0.0);
        }
        let mut flagged = 0usize;
        for v in adversarial {
            if self.is_flagged(primary, v)? {
                flagged += 1;
            }
        }
        Ok(100.0 * flagged as f32 / adversarial.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duo_models::{Architecture, BackboneConfig};
    use duo_retrieval::RetrievalConfig;
    use duo_tensor::Rng64;
    use duo_video::{ClipSpec, DatasetKind};

    fn setup() -> (RetrievalSystem, EnsembleDetector, SyntheticDataset) {
        let mut rng = Rng64::new(261);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 11, 2, 1);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 8).copied().collect();
        let primary = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let system = RetrievalSystem::build(
            primary,
            &ds,
            &gallery,
            RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        let secondary =
            Backbone::new(Architecture::SlowFast, BackboneConfig::tiny(), &mut rng).unwrap();
        let detector = EnsembleDetector::build(secondary, &ds, &gallery, 5).unwrap();
        (system, detector, ds)
    }

    #[test]
    fn scores_are_bounded() {
        let (mut sys, mut det, ds) = setup();
        for c in 0..4 {
            let v = ds.video(VideoId { class: c, instance: 0 });
            let s = det.score(&mut sys, &v).unwrap();
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn calibration_bounds_clean_flags() {
        let (mut sys, mut det, ds) = setup();
        let clean: Vec<Video> =
            (0..8).map(|c| ds.video(VideoId { class: c, instance: 0 })).collect();
        det.calibrate(&mut sys, &clean, 0.15).unwrap();
        let mut flagged = 0;
        for v in &clean {
            if det.is_flagged(&mut sys, v).unwrap() {
                flagged += 1;
            }
        }
        assert!(flagged <= 2, "calibration must bound clean flags, got {flagged}/8");
    }

    #[test]
    fn empty_gallery_rejected() {
        let mut rng = Rng64::new(262);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 11, 1, 0);
        let secondary =
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        assert!(EnsembleDetector::build(secondary, &ds, &[], 5).is_err());
    }

    #[test]
    fn detection_rate_is_well_formed() {
        let (mut sys, mut det, ds) = setup();
        let clean: Vec<Video> =
            (0..6).map(|c| ds.video(VideoId { class: c, instance: 0 })).collect();
        det.calibrate(&mut sys, &clean, 0.1).unwrap();
        // Heavily corrupted queries as adversarial stand-ins.
        let mut rng = Rng64::new(263);
        let adv: Vec<Video> = clean
            .iter()
            .map(|v| {
                let mut n = v.clone();
                for x in n.tensor_mut().as_mut_slice() {
                    *x = (*x + 40.0 * rng.normal()).clamp(0.0, 255.0);
                }
                n
            })
            .collect();
        let rate = det.detection_rate(&mut sys, &adv).unwrap();
        assert!((0.0..=100.0).contains(&rate));
        assert_eq!(det.detection_rate(&mut sys, &[]).unwrap(), 0.0);
    }
}
