//! Bit-identity property suite for the parallel compute core.
//!
//! The PR 5 determinism contract: the threaded, cache-blocked kernels
//! (`matmul_into_with`, `im2col3d_into_with`, and conv3d as their
//! composition) produce outputs equal to the serial kernels at
//! `f32::to_bits` granularity for every shape and every thread count —
//! workers own disjoint output rows and run the identical per-element
//! float program, so partitioning can never move a bit. Thread counts
//! {1, 2, 3, 8} cover the degenerate pool, non-divisible row splits, and
//! oversubscription; the generated shapes land on every `MR`/`NR` tile
//! remainder class.
//!
//! Failing case seeds persist to `tests/properties.regressions` and
//! replay before fresh generation (asserted at the bottom of this file).

use duo_check::{check, prop_assert_eq, Config, Strategy};
use duo_tensor::{
    im2col3d_into_with, matmul_into_serial, matmul_into_with, Conv3dSpec, Rng64, Tensor,
    ThreadPool,
};
use std::ops::Range;

/// Thread counts every property sweeps: serial shortcut, uneven splits,
/// and oversubscription past any sane core count for the tiny shapes.
const THREADS: [usize; 4] = [1, 2, 3, 8];

const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/properties.regressions");

fn config() -> Config {
    Config::default().with_cases(24).with_regressions(REGRESSIONS)
}

/// GEMM dimension strategy, shared with the replay-order test below so
/// replayed seeds regenerate the exact committed cases.
fn dim() -> Range<usize> {
    1..48
}

fn seed() -> Range<u64> {
    0..0x1000_0000
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

check! {
    #![config(config())]

    fn threaded_matmul_is_bitwise_serial(m in dim(), k in dim(), n in dim(), s in seed()) {
        let mut rng = Rng64::new(s);
        let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
        let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
        let mut serial = Tensor::zeros(&[m, n]);
        matmul_into_serial(&a, &b, &mut serial).unwrap();
        for &threads in &THREADS {
            let pool = ThreadPool::new(threads);
            let mut par = Tensor::zeros(&[m, n]);
            matmul_into_with(&a, &b, &mut par, &pool).unwrap();
            prop_assert_eq!(
                bits(&serial),
                bits(&par),
                "({m},{k},{n}) drifted at {threads} threads"
            );
        }
    }

    fn threaded_im2col_is_bitwise_serial(
        chans in 1usize..4,
        thw in (3usize..8, 3usize..8, 3usize..8),
        ksp in (1usize..4, 1usize..4, 0usize..3),
        s in seed(),
    ) {
        let (t, h, w) = thw;
        let (kern, stride, pad) = ksp;
        let spec = Conv3dSpec::cubic(chans, kern, (stride, stride, stride), pad);
        let mut rng = Rng64::new(s);
        let input = Tensor::randn(&[chans, t, h, w], 1.0, rng.as_rng());
        let (ot, oh, ow) = spec.output_thw(t, h, w).unwrap();
        let rows = chans * kern * kern * kern;
        let cols = ot * oh * ow;
        let serial_pool = ThreadPool::new(1);
        let mut serial = Tensor::zeros(&[rows, cols]);
        im2col3d_into_with(&input, &spec, &mut serial, &serial_pool).unwrap();
        for &threads in &THREADS[1..] {
            let pool = ThreadPool::new(threads);
            let mut par = Tensor::full(&[rows, cols], f32::NAN);
            im2col3d_into_with(&input, &spec, &mut par, &pool).unwrap();
            prop_assert_eq!(
                bits(&serial),
                bits(&par),
                "im2col [{chans},{t},{h},{w}] k{kern} s{stride} p{pad} drifted at {threads} threads"
            );
        }
    }

    fn threaded_conv3d_is_bitwise_serial(
        oc in 1usize..6,
        thw in (3usize..7, 3usize..7, 3usize..7),
        ck in (1usize..3, 1usize..4),
        s in seed(),
    ) {
        let (t, h, w) = thw;
        let (chans, kern) = ck;
        let spec = Conv3dSpec::cubic(chans, kern, (1, 1, 1), 1);
        let mut rng = Rng64::new(s);
        let input = Tensor::randn(&[chans, t, h, w], 1.0, rng.as_rng());
        let (ot, oh, ow) = spec.output_thw(t, h, w).unwrap();
        let rows = chans * kern * kern * kern;
        let cols = ot * oh * ow;
        let weight = Tensor::randn(&[oc, rows], 1.0, rng.as_rng());

        // Serial conv3d: serial lowering, serial GEMM.
        let serial_pool = ThreadPool::new(1);
        let mut cols_serial = Tensor::zeros(&[rows, cols]);
        im2col3d_into_with(&input, &spec, &mut cols_serial, &serial_pool).unwrap();
        let mut out_serial = Tensor::zeros(&[oc, cols]);
        matmul_into_serial(&weight, &cols_serial, &mut out_serial).unwrap();

        for &threads in &THREADS {
            let pool = ThreadPool::new(threads);
            let mut cols_par = Tensor::zeros(&[rows, cols]);
            im2col3d_into_with(&input, &spec, &mut cols_par, &pool).unwrap();
            let mut out_par = Tensor::zeros(&[oc, cols]);
            matmul_into_with(&weight, &cols_par, &mut out_par, &pool).unwrap();
            prop_assert_eq!(
                bits(&out_serial),
                bits(&out_par),
                "conv3d [{chans},{t},{h},{w}] k{kern} oc{oc} drifted at {threads} threads"
            );
        }
    }
}

/// Fixed shapes that straddle the blocking constants (`KC = 256`,
/// `NC = 1024`, `MR = 4`, `NR = 16`): multi-panel k, multi-panel n, and
/// dimensions one off every tile multiple.
#[test]
fn panel_boundary_shapes_are_bitwise_serial() {
    let mut rng = Rng64::new(0xb10c);
    for &(m, k, n) in &[
        (13usize, 259usize, 60usize), // k crosses one KC boundary, odd everything
        (5, 513, 48),                 // k spans three KC panels
        (9, 40, 1030),                // n crosses the NC panel boundary
        (64, 256, 64),                // exact tile/panel multiples
        (3, 17, 15),                  // below one NR tile, m < MR
    ] {
        let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
        let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
        let mut serial = Tensor::zeros(&[m, n]);
        matmul_into_serial(&a, &b, &mut serial).unwrap();
        for &threads in &THREADS {
            let pool = ThreadPool::new(threads);
            let mut par = Tensor::zeros(&[m, n]);
            matmul_into_with(&a, &b, &mut par, &pool).unwrap();
            assert_eq!(
                serial.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m},{k},{n}) drifted at {threads} threads"
            );
        }
    }
}

/// The committed kernel regression seeds must replay *before* fresh
/// generation: running the property with zero fresh cases must evaluate
/// exactly the values those seeds regenerate, in file order.
#[test]
fn committed_regression_seeds_replay_before_fresh_generation() {
    let text = std::fs::read_to_string(REGRESSIONS).unwrap();
    let committed: Vec<u64> = duo_check::parse_regressions(&text)
        .into_iter()
        .filter(|(name, _)| name == "threaded_matmul_is_bitwise_serial")
        .map(|(_, s)| s)
        .collect();
    assert!(
        !committed.is_empty(),
        "tests/properties.regressions must carry the PR 5 kernel seeds"
    );
    assert!(
        duo_check::parse_regressions(&text)
            .iter()
            .any(|(name, _)| name == "threaded_im2col_is_bitwise_serial"),
        "the im2col suite's seed must be committed too"
    );

    let strategy = (dim(), dim(), dim(), seed());
    let observed = std::cell::RefCell::new(Vec::new());
    let cfg = Config::default().with_cases(0).with_regressions(REGRESSIONS);
    let outcome = duo_check::run_property_result(
        "threaded_matmul_is_bitwise_serial",
        &cfg,
        &strategy,
        |value| {
            observed.borrow_mut().push(*value);
            Ok(())
        },
    );
    assert!(outcome.is_ok(), "recorder property cannot fail");

    let expected: Vec<(usize, usize, usize, u64)> = committed
        .iter()
        .map(|&s| strategy.generate(&mut Rng64::new(s)))
        .collect();
    assert_eq!(
        *observed.borrow(),
        expected,
        "replayed cases must come first and regenerate the committed seeds exactly"
    );
}
