//! Bit-identity property suite for the parallel compute core.
//!
//! The PR 5 determinism contract: the threaded, cache-blocked kernels
//! (`matmul_into_with`, `im2col3d_into_with`, and conv3d as their
//! composition) produce outputs equal to the serial kernels at
//! `f32::to_bits` granularity for every shape and every thread count —
//! workers own disjoint output rows and run the identical per-element
//! float program, so partitioning can never move a bit. Thread counts
//! {1, 2, 3, 8} cover the degenerate pool, non-divisible row splits, and
//! oversubscription; the generated shapes land on every `MR`/`NR` tile
//! remainder class.
//!
//! The wide-kernel rework extends the wall: the fused-bias entry points
//! (`gemm_bias`, `gemm_bias_with`) must equal a GEMM followed by a bias
//! loop, a `PackedA` reused across right operands must equal packing
//! fresh, and every 8-row block remainder class must survive the packed
//! kernel's full-depth store schedule.
//!
//! Failing case seeds persist to `tests/properties.regressions` and
//! replay before fresh generation (asserted at the bottom of this file).

use duo_check::{check, prop_assert_eq, Config, Strategy};
use duo_tensor::{
    gemm_bias, gemm_bias_with, gemm_packed, im2col3d_into_with, matmul_into_serial,
    matmul_into_with, Conv3dSpec, PackedA, Rng64, Tensor, ThreadPool,
};
use std::ops::Range;

/// Thread counts every property sweeps: serial shortcut, uneven splits,
/// and oversubscription past any sane core count for the tiny shapes.
const THREADS: [usize; 4] = [1, 2, 3, 8];

const REGRESSIONS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/properties.regressions");

fn config() -> Config {
    Config::default().with_cases(24).with_regressions(REGRESSIONS)
}

/// GEMM dimension strategy, shared with the replay-order test below so
/// replayed seeds regenerate the exact committed cases.
fn dim() -> Range<usize> {
    1..48
}

fn seed() -> Range<u64> {
    0..0x1000_0000
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

check! {
    #![config(config())]

    fn threaded_matmul_is_bitwise_serial(m in dim(), k in dim(), n in dim(), s in seed()) {
        let mut rng = Rng64::new(s);
        let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
        let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
        let mut serial = Tensor::zeros(&[m, n]);
        matmul_into_serial(&a, &b, &mut serial).unwrap();
        for &threads in &THREADS {
            let pool = ThreadPool::new(threads);
            let mut par = Tensor::zeros(&[m, n]);
            matmul_into_with(&a, &b, &mut par, &pool).unwrap();
            prop_assert_eq!(
                bits(&serial),
                bits(&par),
                "({m},{k},{n}) drifted at {threads} threads"
            );
        }
    }

    fn fused_bias_gemm_is_bitwise_unfused(m in dim(), k in dim(), n in dim(), s in seed()) {
        let mut rng = Rng64::new(s);
        let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
        let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
        let bias = Tensor::randn(&[n], 1.0, rng.as_rng());
        // Unfused reference: serial GEMM, then a bias sweep adding
        // `bias[j]` onto each finished element — bias last, exactly the
        // contract's float program.
        let mut reference = Tensor::zeros(&[m, n]);
        matmul_into_serial(&a, &b, &mut reference).unwrap();
        let bv = bias.as_slice().to_vec();
        for row in reference.as_mut_slice().chunks_exact_mut(n) {
            for (o, bval) in row.iter_mut().zip(&bv) {
                *o += bval;
            }
        }
        let mut fused = Tensor::full(&[m, n], f32::NAN);
        gemm_bias(&a, &b, &bias, &mut fused).unwrap();
        prop_assert_eq!(
            bits(&reference),
            bits(&fused),
            "({m},{k},{n}) fused bias drifted from gemm + bias loop"
        );
        for &threads in &THREADS {
            let pool = ThreadPool::new(threads);
            let mut par = Tensor::full(&[m, n], f32::NAN);
            gemm_bias_with(&a, &b, &bias, &mut par, &pool).unwrap();
            prop_assert_eq!(
                bits(&reference),
                bits(&par),
                "({m},{k},{n}) fused bias drifted at {threads} threads"
            );
        }
    }

    fn packed_a_reuse_is_bitwise_fresh(m in dim(), k in dim(), n in dim(), s in seed()) {
        let mut rng = Rng64::new(s);
        let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
        let b1 = Tensor::randn(&[k, n], 1.0, rng.as_rng());
        let b2 = Tensor::randn(&[k, n], 1.0, rng.as_rng());
        let packed = PackedA::pack(&a).unwrap();
        // One packing, two right operands — the reuse pattern of
        // `Conv3d::infer_batch` — must match the fresh serial kernel on
        // both products.
        for bmat in [&b1, &b2] {
            let mut serial = Tensor::zeros(&[m, n]);
            matmul_into_serial(&a, bmat, &mut serial).unwrap();
            let mut reused = Tensor::full(&[m, n], f32::NAN);
            gemm_packed(&packed, bmat, &mut reused).unwrap();
            prop_assert_eq!(
                bits(&serial),
                bits(&reused),
                "({m},{k},{n}) packed-A reuse drifted from the serial kernel"
            );
        }
    }

    fn threaded_im2col_is_bitwise_serial(
        chans in 1usize..4,
        thw in (3usize..8, 3usize..8, 3usize..8),
        ksp in (1usize..4, 1usize..4, 0usize..3),
        s in seed(),
    ) {
        let (t, h, w) = thw;
        let (kern, stride, pad) = ksp;
        let spec = Conv3dSpec::cubic(chans, kern, (stride, stride, stride), pad);
        let mut rng = Rng64::new(s);
        let input = Tensor::randn(&[chans, t, h, w], 1.0, rng.as_rng());
        let (ot, oh, ow) = spec.output_thw(t, h, w).unwrap();
        let rows = chans * kern * kern * kern;
        let cols = ot * oh * ow;
        let serial_pool = ThreadPool::new(1);
        let mut serial = Tensor::zeros(&[rows, cols]);
        im2col3d_into_with(&input, &spec, &mut serial, &serial_pool).unwrap();
        for &threads in &THREADS[1..] {
            let pool = ThreadPool::new(threads);
            let mut par = Tensor::full(&[rows, cols], f32::NAN);
            im2col3d_into_with(&input, &spec, &mut par, &pool).unwrap();
            prop_assert_eq!(
                bits(&serial),
                bits(&par),
                "im2col [{chans},{t},{h},{w}] k{kern} s{stride} p{pad} drifted at {threads} threads"
            );
        }
    }

    fn threaded_conv3d_is_bitwise_serial(
        oc in 1usize..6,
        thw in (3usize..7, 3usize..7, 3usize..7),
        ck in (1usize..3, 1usize..4),
        s in seed(),
    ) {
        let (t, h, w) = thw;
        let (chans, kern) = ck;
        let spec = Conv3dSpec::cubic(chans, kern, (1, 1, 1), 1);
        let mut rng = Rng64::new(s);
        let input = Tensor::randn(&[chans, t, h, w], 1.0, rng.as_rng());
        let (ot, oh, ow) = spec.output_thw(t, h, w).unwrap();
        let rows = chans * kern * kern * kern;
        let cols = ot * oh * ow;
        let weight = Tensor::randn(&[oc, rows], 1.0, rng.as_rng());

        // Serial conv3d: serial lowering, serial GEMM.
        let serial_pool = ThreadPool::new(1);
        let mut cols_serial = Tensor::zeros(&[rows, cols]);
        im2col3d_into_with(&input, &spec, &mut cols_serial, &serial_pool).unwrap();
        let mut out_serial = Tensor::zeros(&[oc, cols]);
        matmul_into_serial(&weight, &cols_serial, &mut out_serial).unwrap();

        for &threads in &THREADS {
            let pool = ThreadPool::new(threads);
            let mut cols_par = Tensor::zeros(&[rows, cols]);
            im2col3d_into_with(&input, &spec, &mut cols_par, &pool).unwrap();
            let mut out_par = Tensor::zeros(&[oc, cols]);
            matmul_into_with(&weight, &cols_par, &mut out_par, &pool).unwrap();
            prop_assert_eq!(
                bits(&out_serial),
                bits(&out_par),
                "conv3d [{chans},{t},{h},{w}] k{kern} oc{oc} drifted at {threads} threads"
            );
        }
    }
}

/// Fixed shapes that straddle the blocking constants (`KC = 256`,
/// `NC = 1024`, `MR = 4`, `NR = 16`): multi-panel k, multi-panel n, and
/// dimensions one off every tile multiple.
#[test]
fn panel_boundary_shapes_are_bitwise_serial() {
    let mut rng = Rng64::new(0xb10c);
    for &(m, k, n) in &[
        (13usize, 259usize, 60usize), // k crosses one KC boundary, odd everything
        (5, 513, 48),                 // k spans three KC panels
        (9, 40, 1030),                // n crosses the NC panel boundary
        (64, 256, 64),                // exact tile/panel multiples
        (3, 17, 15),                  // below one NR tile, m < MR
    ] {
        let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
        let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
        let mut serial = Tensor::zeros(&[m, n]);
        matmul_into_serial(&a, &b, &mut serial).unwrap();
        for &threads in &THREADS {
            let pool = ThreadPool::new(threads);
            let mut par = Tensor::zeros(&[m, n]);
            matmul_into_with(&a, &b, &mut par, &pool).unwrap();
            assert_eq!(
                serial.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m},{k},{n}) drifted at {threads} threads"
            );
        }
    }
}

/// Every row-remainder class of the 8-row packed kernel, with the depth
/// crossing the legacy `KC = 256` panel boundary: the packed path sweeps
/// full depth in one register pass while the serial reference re-panels
/// at `KC`, so these shapes prove the store-schedule difference never
/// moves a bit. `m ∈ {1, 4, 7}` never fills a block (pure
/// `micro_4`/`micro_1` tail), `{8, 16}` are exact blocks, `{9, 15, 17}`
/// mix full blocks with every tail size class.
#[test]
fn eight_row_block_boundaries_are_bitwise_serial() {
    let mut rng = Rng64::new(0x8b10c);
    for &m in &[1usize, 4, 7, 8, 9, 15, 16, 17] {
        for &(k, n) in &[(259usize, 37usize), (300, 64)] {
            let a = Tensor::randn(&[m, k], 1.0, rng.as_rng());
            let b = Tensor::randn(&[k, n], 1.0, rng.as_rng());
            let bias = Tensor::randn(&[n], 1.0, rng.as_rng());
            let mut serial = Tensor::zeros(&[m, n]);
            matmul_into_serial(&a, &b, &mut serial).unwrap();
            let mut expected_bias = serial.clone();
            for row in expected_bias.as_mut_slice().chunks_exact_mut(n) {
                for (o, bval) in row.iter_mut().zip(bias.as_slice()) {
                    *o += bval;
                }
            }
            for &threads in &THREADS {
                let pool = ThreadPool::new(threads);
                let mut par = Tensor::full(&[m, n], f32::NAN);
                matmul_into_with(&a, &b, &mut par, &pool).unwrap();
                assert_eq!(
                    bits(&serial),
                    bits(&par),
                    "({m},{k},{n}) drifted at {threads} threads"
                );
                let mut fused = Tensor::full(&[m, n], f32::NAN);
                gemm_bias_with(&a, &b, &bias, &mut fused, &pool).unwrap();
                assert_eq!(
                    bits(&expected_bias),
                    bits(&fused),
                    "({m},{k},{n}) fused bias drifted at {threads} threads"
                );
            }
        }
    }
}

/// The committed kernel regression seeds must replay *before* fresh
/// generation: running the property with zero fresh cases must evaluate
/// exactly the values those seeds regenerate, in file order.
#[test]
fn committed_regression_seeds_replay_before_fresh_generation() {
    let text = std::fs::read_to_string(REGRESSIONS).unwrap();
    let committed: Vec<u64> = duo_check::parse_regressions(&text)
        .into_iter()
        .filter(|(name, _)| name == "threaded_matmul_is_bitwise_serial")
        .map(|(_, s)| s)
        .collect();
    assert!(
        !committed.is_empty(),
        "tests/properties.regressions must carry the PR 5 kernel seeds"
    );
    for required in ["threaded_im2col_is_bitwise_serial", "fused_bias_gemm_is_bitwise_unfused"] {
        assert!(
            duo_check::parse_regressions(&text).iter().any(|(name, _)| name == required),
            "tests/properties.regressions must carry a seed for {required}"
        );
    }

    let strategy = (dim(), dim(), dim(), seed());
    let observed = std::cell::RefCell::new(Vec::new());
    let cfg = Config::default().with_cases(0).with_regressions(REGRESSIONS);
    let outcome = duo_check::run_property_result(
        "threaded_matmul_is_bitwise_serial",
        &cfg,
        &strategy,
        |value| {
            observed.borrow_mut().push(*value);
            Ok(())
        },
    );
    assert!(outcome.is_ok(), "recorder property cannot fail");

    let expected: Vec<(usize, usize, usize, u64)> = committed
        .iter()
        .map(|&s| strategy.generate(&mut Rng64::new(s)))
        .collect();
    assert_eq!(
        *observed.borrow(),
        expected,
        "replayed cases must come first and regenerate the committed seeds exactly"
    );
}
