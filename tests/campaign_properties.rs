//! Property-based coverage of the campaign fleet runner's determinism
//! contract: same seed, same service, same pairs → byte-identical
//! leaderboard JSON, at any client count and any budget.
//!
//! This suite persists failing case seeds to `tests/properties.regressions`
//! (see [`duo_check`]); past failures replay before fresh generation.

use duo::prelude::*;
use duo::video::SyntheticVideoGenerator;
use duo_check::{check, prop_assert, prop_assert_eq, Config};

fn config() -> Config {
    // Each case stands up a live service and runs six campaigns (two per
    // client count), so the case count stays small.
    Config::default()
        .with_cases(3)
        .with_regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/properties.regressions"))
}

/// A tiny live service over an untrained victim world.
fn service(seed: u64) -> RetrievalService {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 8, 1, 0);
    let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let system = RetrievalSystem::build(
        victim,
        &ds,
        ds.train(),
        RetrievalConfig { m: 4, nodes: 2, threaded: false, ..Default::default() },
    )
    .unwrap();
    RetrievalService::start(system, ServeConfig::default()).unwrap()
}

/// A cheap mixed zoo: sparse-RL agents on even slots, Vanilla on odd.
fn zoo(client: usize) -> Box<dyn Attacker> {
    if client % 2 == 0 {
        Box::new(SparseRlAttacker::new(SparseRlConfig {
            k: 40,
            n: 2,
            tau: 30.0,
            episodes: 3,
            lr: 0.8,
            eta: 1.0,
        }))
    } else {
        Box::new(VanillaAttacker::new(VanillaConfig { k: 60, n: 2, tau: 30.0, iter_num_q: 3 }))
    }
}

check! {
    #![config(config())]

    fn campaign_leaderboard_replay_is_byte_identical(
        world_seed in 0u64..1_000,
        campaign_seed in 0u64..1_000_000,
        budget in 4u64..64,
    ) {
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), world_seed ^ 0xA11CE);
        let pairs = vec![
            (gen.generate(0, 0), gen.generate(4, 0)),
            (gen.generate(1, 0), gen.generate(5, 0)),
        ];
        let svc = service(world_seed);
        for clients in [1usize, 2, 8] {
            let config = CampaignConfig {
                clients,
                per_client_budget: budget,
                seed: campaign_seed,
                max_retries: 16,
            };
            let a = run_campaign(&svc, zoo, &pairs, &config).unwrap();
            let b = run_campaign(&svc, zoo, &pairs, &config).unwrap();
            let (ja, jb) =
                (a.leaderboard.to_bench_json(), b.leaderboard.to_bench_json());
            prop_assert_eq!(
                &ja, &jb,
                "fleet of {} clients must replay byte-identically", clients
            );
            prop_assert!(!ja.is_empty() && ja.ends_with("]\n"), "artifact shape: {ja:?}");
            // Thread interleaving may reorder *service* accounting, but
            // every client's own charges are deterministic.
            prop_assert_eq!(
                a.charged, b.charged,
                "fleet-wide charges must replay exactly"
            );
            for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
                prop_assert_eq!(oa.queries, ob.queries, "per-client charges must replay");
                prop_assert!(oa.queries <= budget, "budget {budget} must cap charges");
            }
        }
        svc.shutdown();
    }
}
