//! Cross-crate property-based tests on the attack-facing invariants.
//!
//! This suite persists failing case seeds to `tests/properties.regressions`
//! (see [`duo_check`]); past failures replay before fresh generation.

use duo::prelude::*;
use duo_check::{check, prop_assert, prop_assert_eq, vec_of, Config};

fn ids(raw: &[(u32, u32)]) -> Vec<VideoId> {
    // Retrieval lists are duplicate-free by construction (a gallery video
    // appears at most once), so the generators dedupe.
    let mut out: Vec<VideoId> = Vec::new();
    for &(class, instance) in raw {
        let id = VideoId { class, instance };
        if !out.contains(&id) {
            out.push(id);
        }
    }
    out
}

fn config() -> Config {
    Config::default()
        .with_cases(32)
        .with_regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/properties.regressions"))
}

check! {
    #![config(config())]

    fn ap_at_m_is_bounded_and_symmetric(
        a in vec_of((0u32..10, 0u32..4), 1..8),
        b in vec_of((0u32..10, 0u32..4), 1..8),
    ) {
        let (a, b) = (ids(&a), ids(&b));
        let ab = ap_at_m(&a, &b);
        prop_assert!((0.0..=100.0).contains(&ab));
        prop_assert!((ab - ap_at_m(&b, &a)).abs() < 1e-4);
    }

    fn ndcg_cooccurrence_bounded_and_maximal_on_self(
        a in vec_of((0u32..10, 0u32..4), 1..8),
    ) {
        let a = ids(&a);
        let s = ndcg_cooccurrence(&a, &a);
        prop_assert!((s - 1.0).abs() < 1e-5);
        let empty: Vec<VideoId> = Vec::new();
        prop_assert_eq!(ndcg_cooccurrence(&a, &empty), 0.0);
    }

    fn lp_box_admm_always_selects_exactly_k(
        scores in vec_of(-10.0f32..10.0, 1..64),
        k_frac in 0.0f32..1.0,
    ) {
        let k = ((scores.len() as f32) * k_frac) as usize;
        let mask = lp_box_admm(&scores, k, 30).unwrap();
        prop_assert_eq!(mask.iter().filter(|&&b| b).count(), k);
        prop_assert_eq!(mask.len(), scores.len());
    }

    fn spa_and_pscore_agree_on_support(values in vec_of(-30.0f32..30.0, 1..128)) {
        let n = values.len();
        let phi = Tensor::from_vec(values.clone(), &[n]).unwrap();
        prop_assert_eq!(spa(&phi), values.iter().filter(|&&x| x != 0.0).count());
        let expected = values.iter().map(|x| x.abs()).sum::<f32>() / n as f32;
        prop_assert!((pscore(&phi) - expected).abs() < 1e-3);
    }

    fn add_perturbation_never_leaves_pixel_range(
        seed in 0u64..500,
        magnitude in 0.0f32..500.0,
    ) {
        let spec = ClipSpec::tiny();
        let mut rng = Rng64::new(seed);
        let v = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, spec, seed, 1, 0)
            .video(VideoId { class: 0, instance: 0 });
        let phi = Tensor::rand_uniform(
            &[spec.frames, spec.height, spec.width, spec.channels],
            -magnitude,
            magnitude,
            rng.as_rng(),
        );
        let adv = v.add_perturbation(&phi).unwrap();
        prop_assert!(adv.tensor().min() >= 0.0);
        prop_assert!(adv.tensor().max() <= 255.0);
    }

    fn quantization_is_idempotent(seed in 0u64..200) {
        let ds = SyntheticDataset::subsampled(DatasetKind::Ucf101Like, ClipSpec::tiny(), seed, 1, 0);
        let mut v = ds.video(VideoId { class: (seed % 50) as u32, instance: 0 });
        v.quantize();
        let once = v.clone();
        v.quantize();
        prop_assert_eq!(&once, &v);
    }

    fn dataset_video_ids_round_trip(class in 0u32..50, instance in 0u32..6) {
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 9, 3, 3);
        let a = ds.video(VideoId { class, instance });
        let b = ds.video(VideoId { class, instance });
        prop_assert_eq!(a, b);
    }
}

/// Regression ported from the retired proptest seed file: the shrunk
/// counterexample `a = [(5, 2), (5, 2)], b = [(5, 2)]` once tripped
/// `ap_at_m_is_bounded_and_symmetric` before `ids` deduplicated its
/// inputs. Pinned explicitly so the fix can never regress silently.
#[test]
fn regression_ap_at_m_duplicate_pair() {
    let a = ids(&[(5, 2), (5, 2)]);
    let b = ids(&[(5, 2)]);
    let ab = ap_at_m(&a, &b);
    assert!((0.0..=100.0).contains(&ab));
    assert!((ab - ap_at_m(&b, &a)).abs() < 1e-4);
}

#[test]
fn sparse_masks_phi_always_respects_masks() {
    // Deterministic cross-crate check: the φ composition can never place
    // energy outside 𝕀⊙𝓕, whatever θ contains.
    let dims = [4usize, 6, 6, 3];
    let mut rng = Rng64::new(601);
    for _ in 0..20 {
        let mut masks = SparseMasks::dense_init(&dims);
        masks.theta = Tensor::randn(&dims, 30.0, rng.as_rng());
        // Random pixel mask + random frame mask.
        masks.pixel_mask = masks.pixel_mask.map(|_| 0.0);
        for _ in 0..40 {
            let i = rng.below(masks.pixel_mask.len());
            masks.pixel_mask.as_mut_slice()[i] = 1.0;
        }
        masks.frame_mask = (0..4).map(|_| rng.uniform() > 0.5).collect();
        let phi = masks.phi();
        let mask = masks.mask();
        for (i, &p) in phi.as_slice().iter().enumerate() {
            if p != 0.0 {
                assert_eq!(mask.as_slice()[i], 1.0, "phi outside mask at {i}");
            }
        }
        assert_eq!(masks.support_indices().len(), mask.l0_norm());
    }
}
