//! Property-based coverage of the chaos layer: the circuit-breaker state
//! machine and the determinism contract of seeded fault schedules.
//!
//! This suite persists failing case seeds to
//! `tests/chaos_properties.regressions` (see [`duo_check`]); past failures
//! replay before fresh generation.

use duo::prelude::*;
use duo_check::{check, prop_assert, prop_assert_eq, vec_of, Config};

fn config() -> Config {
    Config::default()
        .with_cases(48)
        .with_regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/chaos_properties.regressions"))
}

/// Reference model of the documented breaker protocol, written against
/// the doc comments rather than the implementation: closed → open after
/// `threshold` consecutive failures; open denies exactly `cooldown`
/// queries then admits the single half-open probe; the probe's outcome
/// closes or re-opens.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Model {
    Closed { fails: u32 },
    Open { denials_left: u32 },
    Probing,
}

impl Model {
    fn admit(&mut self, cooldown: u32) -> bool {
        match *self {
            Model::Closed { .. } => true,
            Model::Open { denials_left: 0 } => {
                *self = Model::Probing;
                true
            }
            Model::Open { denials_left } => {
                *self = Model::Open { denials_left: denials_left - 1 };
                false
            }
            Model::Probing => {
                let _ = cooldown;
                false
            }
        }
    }

    fn record(&mut self, ok: bool, threshold: u32, cooldown: u32) {
        *self = match (*self, ok) {
            (Model::Closed { .. }, true) => Model::Closed { fails: 0 },
            (Model::Closed { fails }, false) if fails + 1 >= threshold => {
                Model::Open { denials_left: cooldown }
            }
            (Model::Closed { fails }, false) => Model::Closed { fails: fails + 1 },
            (Model::Probing, true) => Model::Closed { fails: 0 },
            (Model::Probing, false) => Model::Open { denials_left: cooldown },
            (open, _) => open,
        };
    }

    fn state(&self) -> BreakerState {
        match self {
            Model::Closed { .. } => BreakerState::Closed,
            Model::Open { .. } => BreakerState::Open,
            Model::Probing => BreakerState::HalfOpen,
        }
    }
}

check! {
    #![config(config())]

    /// The breaker agrees with the reference model on every admit
    /// decision and observable state, under arbitrary outcome scripts.
    /// In particular it never admits while open (model denies during
    /// cooldown) and half-open admits exactly one probe (model `Probing`
    /// denies everything until resolved).
    fn breaker_matches_reference_model(
        threshold in 1u32..5,
        cooldown in 0u32..7,
        script in vec_of(0u32..2, 1..80),
    ) {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_cooldown: cooldown,
        });
        let mut model = Model::Closed { fails: 0 };
        for &bit in &script {
            let want = model.admit(cooldown);
            let got = breaker.admit();
            prop_assert_eq!(got, want);
            prop_assert_eq!(breaker.state(), model.state());
            if got {
                let ok = bit == 1;
                model.record(ok, threshold, cooldown);
                if ok {
                    breaker.record_success();
                } else {
                    breaker.record_failure();
                }
                prop_assert_eq!(breaker.state(), model.state());
            }
        }
    }

    /// An open breaker denies exactly `cooldown` queries, then the next
    /// admit is the half-open probe, and no second query is admitted
    /// while the probe is unresolved.
    fn open_breaker_denies_exactly_cooldown_then_single_probe(
        threshold in 1u32..4,
        cooldown in 0u32..9,
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_cooldown: cooldown,
        });
        for _ in 0..threshold {
            prop_assert!(b.admit());
            b.record_failure();
        }
        prop_assert_eq!(b.state(), BreakerState::Open);
        for i in 0..cooldown {
            prop_assert!(!b.admit(), "denial {} of {} while open", i, cooldown);
            prop_assert_eq!(b.state(), BreakerState::Open);
        }
        prop_assert!(b.admit(), "cooldown spent: probe admitted");
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        for _ in 0..4 {
            prop_assert!(!b.admit(), "no second query while the probe is unresolved");
        }
        prop_assert_eq!(b.transitions().half_opens, 1);
    }

    /// Fault schedules are pure functions of (seed, index): rebuilding the
    /// plan replays the identical schedule, and `schedule(n)` is exactly
    /// the per-index decisions.
    fn fault_schedule_is_pure_in_seed_and_index(
        seed_and_p in (0u64..10_000, 0u32..1000),
        latency in (0u64..500, 0u64..300),
        flap in (0u64..40, 0u64..30),
    ) {
        let ((seed, p_milli), (base, jitter), (flap_start, flap_len)) =
            (seed_and_p, latency, flap);
        let build = || {
            FaultPlan::transient(seed, p_milli as f32 / 1000.0)
                .with_latency(base, jitter, 0.1, 2_000)
                .with_flap(flap_start, flap_start + flap_len)
        };
        let (a, b) = (build(), build());
        let n = 64u64;
        prop_assert_eq!(a.schedule(n), b.schedule(n), "same seed must replay bit-identically");
        for i in 0..n {
            // Pure: re-evaluating an index never changes the answer, and
            // the batch schedule is exactly the pointwise decisions.
            prop_assert_eq!(a.decision(i), a.decision(i));
            prop_assert_eq!(a.schedule(n)[i as usize], a.decision(i));
        }
        for i in flap_start..(flap_start + flap_len) {
            prop_assert!(a.decision(i).offline, "flap window must read offline at {}", i);
        }
        prop_assert!(!a.decision(flap_start + flap_len + 1).offline, "past the flap window");
    }
}

/// Builds a tiny chaotic system: 3 shards, seeded weights (no training),
/// every node armed with a transient + flap + latency plan, hardened
/// resilience policy with breakers.
fn chaotic_system(seed: u64, threaded: bool) -> (RetrievalSystem, SyntheticDataset) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), seed, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let victim = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let mut system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 3, threaded, ..Default::default() },
    )
    .unwrap();
    for (i, node) in system.nodes().iter().enumerate() {
        node.set_fault_plan(Some(
            FaultPlan::transient(seed ^ (0xF1A9 + i as u64), 0.3)
                .with_latency(500, 400, 0.2, 9_000)
                .with_flap(3 + 2 * i as u64, 7 + 2 * i as u64),
        ));
    }
    system.set_resilience(ResilienceConfig::hardened(seed ^ 0xBACC0FF));
    (system, ds)
}

/// Replays the test probes and returns everything observable: ranked
/// lists, coverage, telemetry, and final breaker states.
fn replay(seed: u64, threaded: bool) -> Vec<(Vec<VideoId>, Coverage, QueryTelemetry)> {
    let (system, ds) = chaotic_system(seed, threaded);
    let mut out = Vec::new();
    for &id in ds.test().iter().filter(|id| id.class < 8) {
        let feature = system.embed(&ds.video(id)).unwrap();
        let got = system.retrieve_resilient(&feature).unwrap();
        out.push((got.ids, got.coverage, got.telemetry));
    }
    assert_eq!(
        system.breaker_states().map(|s| s.len()),
        Some(3),
        "armed system exposes per-node breaker states"
    );
    out
}

#[test]
fn same_chaos_seed_replays_bit_identically_across_runs_and_fanout_modes() {
    for seed in [601u64, 602, 603] {
        let inline_a = replay(seed, false);
        let inline_b = replay(seed, false);
        let threaded = replay(seed, true);
        assert_eq!(inline_a, inline_b, "seed {seed}: two inline runs diverged");
        assert_eq!(
            inline_a, threaded,
            "seed {seed}: threaded fan-out must match inline (lists, coverage, telemetry)"
        );
        // The schedule must actually exercise the machinery, or the
        // assertions above are vacuous.
        let faults: u64 = inline_a.iter().map(|(_, _, t)| t.transient_faults).sum();
        assert!(faults > 0, "seed {seed}: chaos schedule never fired");
    }
}

#[test]
fn different_chaos_seeds_produce_different_telemetry() {
    let a = replay(611, false);
    let b = replay(612, false);
    let faults = |r: &[(Vec<VideoId>, Coverage, QueryTelemetry)]| -> Vec<u64> {
        r.iter().map(|(_, _, t)| t.transient_faults + t.node_timeouts).collect()
    };
    assert_ne!(faults(&a), faults(&b), "independent seeds should not share a fault schedule");
}
