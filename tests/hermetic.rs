//! Guards the zero-dependency policy: every crate in the workspace must
//! depend only on other workspace crates by path, never on a registry.
//!
//! The build environment has no network and no vendored registry, so a
//! single `rand = "0.8"` line anywhere would take the whole tier-1 verify
//! down. This test parses every manifest and fails with the offending
//! line, which is a much better failure mode than a cargo resolution
//! error on someone else's machine.

use std::fs;
use std::path::{Path, PathBuf};

/// Section headers whose entries declare dependencies.
const DEP_SECTIONS: &[&str] =
    &["dependencies", "dev-dependencies", "build-dependencies", "workspace.dependencies"];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of this test target is the workspace root (the
    // root package owns tests/).
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn manifests() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).expect("crates/ directory exists");
    for entry in entries {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    assert!(out.len() >= 10, "expected the full workspace, found {out:?}");
    out
}

/// A dependency entry is hermetic when its value is a path/workspace
/// reference: `{ path = "..." }`, `foo.workspace = true`, or
/// `{ workspace = true }`. Anything else (a bare version string, `git`,
/// `registry`) resolves outside the tree.
fn entry_is_hermetic(value: &str) -> bool {
    let v = value.trim();
    (v.starts_with('{') && (v.contains("path") || v.contains("workspace")))
        || v == "true" // from `foo.workspace = true` / `foo.path = "..."` dotted keys
        || v.starts_with('"') && value.contains("path") // `foo.path = "..."` keeps the key's suffix
}

#[test]
fn every_dependency_is_a_workspace_path() {
    let mut violations = Vec::new();
    for manifest in manifests() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("reading {}: {e}", manifest.display()));
        let mut in_dep_section = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let header = header.trim();
                in_dep_section = DEP_SECTIONS.iter().any(|s| {
                    header == *s
                        || header.ends_with(&format!(".{s}"))
                        || header.starts_with(&format!("{s}."))
                });
                continue;
            }
            if !in_dep_section {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else { continue };
            // Dotted keys like `duo-tensor.workspace = true` carry the
            // hermetic marker in the key itself.
            let dotted_ok = key.trim().ends_with(".workspace") || key.trim().ends_with(".path");
            if !dotted_ok && !entry_is_hermetic(value) {
                violations.push(format!(
                    "{}:{}: `{}`",
                    manifest.display(),
                    lineno + 1,
                    raw.trim()
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-path dependencies found (the workspace must build offline with \
         no registry):\n{}",
        violations.join("\n")
    );
}

#[test]
fn no_external_crate_names_survive_in_manifests() {
    // Belt and braces for the exact names this workspace once pulled in.
    const BANNED: &[&str] =
        &["rand", "proptest", "criterion", "crossbeam", "parking_lot", "serde"];
    for manifest in manifests() {
        let text = fs::read_to_string(&manifest).unwrap();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("");
            if let Some((key, _)) = line.split_once('=') {
                let name = key.trim().split('.').next().unwrap_or("").trim_matches('"');
                assert!(
                    !BANNED.contains(&name),
                    "banned dependency `{name}` in {}: {line}",
                    manifest.display()
                );
            }
        }
    }
}

#[test]
fn verify_script_exists_and_runs_offline() {
    let script = workspace_root().join("scripts/verify.sh");
    let text = fs::read_to_string(&script).expect("scripts/verify.sh exists");
    assert!(text.contains("--offline"), "verify.sh must build offline");
    assert!(is_executable(&script), "verify.sh must be executable");
}

#[cfg(unix)]
fn is_executable(path: &Path) -> bool {
    use std::os::unix::fs::PermissionsExt;
    fs::metadata(path).map(|m| m.permissions().mode() & 0o111 != 0).unwrap_or(false)
}

#[cfg(not(unix))]
fn is_executable(_path: &Path) -> bool {
    true
}
