//! Integration tests for the extensions beyond the paper's evaluation:
//! the untargeted attack mode (§I) and the proposed ensemble defense
//! (§V-D).

use duo::defenses::EnsembleDetector;
use duo::models::save_backbone;
use duo::prelude::*;

fn world(seed: u64) -> (BlackBox, SyntheticDataset, Vec<VideoId>) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), seed, 3, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 6, nodes: 2, threaded: false, ..Default::default() },
    )
    .unwrap();
    (BlackBox::new(system), ds, gallery)
}

fn quick_duo() -> DuoConfig {
    let mut cfg = DuoConfig::for_spec(ClipSpec::tiny());
    cfg.transfer.outer_iters = 1;
    cfg.transfer.theta_steps = 4;
    cfg.transfer.admm_iters = 15;
    cfg.query.iter_num_q = 20;
    cfg.iter_num_h = 1;
    cfg
}

#[test]
fn untargeted_duo_produces_valid_sparse_output() {
    let (mut bb, ds, _) = world(601);
    let mut rng = Rng64::new(602);
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 8).copied().collect();
    let (surrogate, _) =
        steal_surrogate(&mut bb, &ds, &probes, StealConfig::quick(), &mut rng).unwrap();
    let v = ds.video(VideoId { class: 2, instance: 0 });
    let mut attack = DuoAttack::new(surrogate, quick_duo());
    let outcome = attack.run_untargeted(&mut bb, &v, &mut rng).unwrap();
    assert!(outcome.spa() > 0);
    assert!(outcome.spa() < v.tensor().len() / 8, "untargeted output must stay sparse");
    assert!(outcome.perturbation.linf_norm() <= 30.0 + 1e-3);
    // The untargeted objective has no target term: it is bounded by η + 1
    // and never increases.
    for &t in &outcome.loss_trajectory {
        assert!(t <= 2.0 + 1e-5);
    }
    for w in outcome.loss_trajectory.windows(2) {
        assert!(w[1] <= w[0] + 1e-5);
    }
}

#[test]
fn untargeted_and_targeted_goals_are_independent_configs() {
    let targeted = quick_duo();
    let untargeted = quick_duo().with_goal(AttackGoal::Untargeted);
    assert_eq!(targeted.transfer.goal, AttackGoal::Targeted);
    assert_eq!(untargeted.transfer.goal, AttackGoal::Untargeted);
    assert_eq!(untargeted.query.goal, AttackGoal::Untargeted);
}

#[test]
fn ensemble_detector_screens_real_attack_traffic() {
    let (mut bb, ds, gallery) = world(611);
    let mut rng = Rng64::new(612);
    // Secondary model of a different architecture over the same gallery.
    let secondary = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let mut detector = EnsembleDetector::build(secondary, &ds, &gallery, 6).unwrap();
    let clean: Vec<Video> = (0..8).map(|c| ds.video(VideoId { class: c, instance: 0 })).collect();
    detector.calibrate(bb.system_mut(), &clean, 0.15).unwrap();

    // Generate real adversarial traffic with DUO.
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 8).copied().collect();
    let (surrogate, _) =
        steal_surrogate(&mut bb, &ds, &probes, StealConfig::quick(), &mut rng).unwrap();
    let mut attack = DuoAttack::new(surrogate, quick_duo());
    let mut adversarial = Vec::new();
    for c in 0..3u32 {
        let v = ds.video(VideoId { class: c, instance: 0 });
        let v_t = ds.video(VideoId { class: c + 4, instance: 0 });
        adversarial.push(attack.run(&mut bb, &v, &v_t, &mut rng).unwrap().adversarial);
    }
    let rate = detector.detection_rate(bb.system_mut(), &adversarial).unwrap();
    assert!((0.0..=100.0).contains(&rate));
    // Clean hold-outs stay mostly unflagged at the calibrated threshold.
    let held_out: Vec<Video> =
        (0..6).map(|c| ds.video(VideoId { class: c, instance: 1 })).collect();
    let clean_rate = detector.detection_rate(bb.system_mut(), &held_out).unwrap();
    assert!(clean_rate <= 50.0, "clean false-positive rate too high: {clean_rate}%");
}

#[test]
fn checkpointed_victim_reproduces_retrieval_service() {
    // Save the victim, rebuild the whole service from the checkpoint, and
    // verify identical retrieval behaviour — the "deploy a trained model"
    // workflow of a downstream user.
    let mut rng = Rng64::new(621);
    let ds = SyntheticDataset::subsampled(DatasetKind::Ucf101Like, ClipSpec::tiny(), 621, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 6).copied().collect();
    let mut victim = Backbone::new(Architecture::Tpn, BackboneConfig::tiny(), &mut rng).unwrap();
    let dir = std::env::temp_dir().join("duo_integration_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("victim.duoparm");
    save_backbone(&mut victim, &path).unwrap();

    let sys1 = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
    )
    .unwrap();

    let mut restored = Backbone::new(Architecture::Tpn, BackboneConfig::tiny(), &mut rng).unwrap();
    duo::models::load_backbone(&mut restored, &path).unwrap();
    let sys2 = RetrievalSystem::build(
        restored,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 3, threaded: false, ..Default::default() },
    )
    .unwrap();

    for c in 0..6 {
        let q = ds.video(VideoId { class: c, instance: 1 });
        assert_eq!(
            sys1.retrieve(&q).unwrap(),
            sys2.retrieve(&q).unwrap(),
            "restored service must rank identically (even with different sharding)"
        );
    }
    let _ = std::fs::remove_file(path);
}
