//! Torture tests for the intra-op thread pool.
//!
//! The pool's plumbing guarantees — results in submission order, panic
//! containment without deadlock, clean join on drop — are what let the
//! kernels promise bit-identical output at any thread count. These tests
//! hammer each guarantee well past normal operating conditions
//! (oversubscription, hundreds of queued jobs, repeated panics,
//! concurrent batches from many threads).

use duo_tensor::{matmul_into_serial, matmul_into_with, Rng64, Tensor, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn oversubscribed_matmul_is_deterministic_across_repeats() {
    // 8 workers on however few cores the host has, and a row count that
    // splits 8 ways unevenly (37 = 8·4 + 5). Three repeats and the serial
    // kernel must all agree to the bit.
    let mut rng = Rng64::new(0x70a7);
    let a = Tensor::randn(&[37, 29], 1.0, rng.as_rng());
    let b = Tensor::randn(&[29, 43], 1.0, rng.as_rng());
    let mut serial = Tensor::zeros(&[37, 43]);
    matmul_into_serial(&a, &b, &mut serial).unwrap();
    let want: Vec<u32> = serial.as_slice().iter().map(|v| v.to_bits()).collect();

    let pool = ThreadPool::new(8);
    for round in 0..3 {
        let mut out = Tensor::zeros(&[37, 43]);
        matmul_into_with(&a, &b, &mut out, &pool).unwrap();
        let got: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, got, "round {round} drifted under oversubscription");
    }
}

#[test]
fn hundreds_of_queued_jobs_return_in_submission_order() {
    let pool = ThreadPool::new(3);
    let ran = Arc::new(AtomicUsize::new(0));
    let jobs: Vec<_> = (0..500usize)
        .map(|i| {
            let ran = Arc::clone(&ran);
            move || {
                ran.fetch_add(1, Ordering::Relaxed);
                i * 31
            }
        })
        .collect();
    let results = pool.run(jobs).unwrap();
    assert_eq!(results, (0..500).map(|i| i * 31).collect::<Vec<_>>());
    assert_eq!(ran.load(Ordering::Relaxed), 500, "every job ran exactly once");
}

#[test]
fn drop_joins_workers_and_loses_no_work() {
    // Churn pools: every batch completes fully before the drop, and the
    // drop itself terminates (a leaked or deadlocked worker would hang
    // the test binary here).
    let completed = Arc::new(AtomicUsize::new(0));
    for _ in 0..40 {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..16)
            .map(|_| {
                let completed = Arc::clone(&completed);
                move || completed.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        pool.run(jobs).unwrap();
        drop(pool);
    }
    assert_eq!(completed.load(Ordering::Relaxed), 40 * 16);
}

#[test]
fn worker_panic_is_contained_and_surfaced() {
    let pool = ThreadPool::new(2);
    for round in 0..10 {
        // One poisoned batch…
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 3, "deliberate torture panic (round {round})");
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = pool.run(jobs).expect_err("panicked job must surface as an error");
        assert_eq!(err.index, 3, "lowest panicked index is reported");
        assert!(err.message.contains("deliberate torture panic"), "{}", err.message);

        // …must leave the pool fully serviceable for the next batch.
        let ok = pool.run((0..6usize).map(|i| move || i).collect::<Vec<_>>()).unwrap();
        assert_eq!(ok, vec![0, 1, 2, 3, 4, 5], "pool unusable after contained panic");
    }
}

#[test]
fn concurrent_batches_from_many_threads_never_interleave_results() {
    let pool = Arc::new(ThreadPool::new(2));
    let handles: Vec<_> = (0..4u64)
        .map(|tid| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let jobs: Vec<_> =
                        (0..32u64).map(|i| move || tid * 1000 + i).collect();
                    let got = pool.run(jobs).unwrap();
                    let want: Vec<u64> = (0..32).map(|i| tid * 1000 + i).collect();
                    assert_eq!(got, want, "batch from thread {tid} saw foreign results");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn jobs_may_call_tensor_kernels_without_deadlock() {
    // A pool job that itself invokes `matmul_into` above the parallel
    // threshold must not re-enter a pool (the worker-context guard routes
    // it to the serial kernel); with 1 worker, any nested blocking `run`
    // would deadlock this test instead of passing.
    let mut rng = Rng64::new(0xdead);
    let a = Arc::new(Tensor::randn(&[64, 64], 1.0, rng.as_rng()));
    let b = Arc::new(Tensor::randn(&[64, 64], 1.0, rng.as_rng()));
    let mut serial = Tensor::zeros(&[64, 64]);
    matmul_into_serial(&a, &b, &mut serial).unwrap();
    let want: Vec<u32> = serial.as_slice().iter().map(|v| v.to_bits()).collect();

    let pool = ThreadPool::new(1);
    let jobs: Vec<_> = (0..3)
        .map(|_| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            move || {
                assert!(ThreadPool::is_worker());
                let mut out = Tensor::zeros(&[64, 64]);
                duo_tensor::matmul_into(&a, &b, &mut out).unwrap();
                out.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
            }
        })
        .collect();
    for got in pool.run(jobs).unwrap() {
        assert_eq!(want, got, "nested kernel call drifted from serial");
    }
}
