//! Determinism guarantees: with a fixed seed, every pipeline stage is
//! bit-identical across independent runs.
//!
//! The reproduction's tables are regenerated from seeds, so any hidden
//! nondeterminism (ambient RNG state, iteration-order dependence, thread
//! scheduling leaking into results) would silently change published
//! numbers. Each test here constructs everything twice, from scratch, and
//! compares exact bits — no tolerances.

use duo::prelude::*;
use duo_tensor::RandomSource;

/// Same seed ⇒ identical raw Rng64 output streams, across all sampling
/// helpers (the helpers must also consume the stream identically).
#[test]
fn rng_streams_are_bit_identical_across_runs() {
    let run = || {
        let mut rng = Rng64::new(0xD15EA5E);
        let raw: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let uniforms: Vec<f32> = (0..64).map(|_| rng.uniform()).collect();
        let normals: Vec<f32> = (0..64).map(|_| rng.normal()).collect();
        let bounded: Vec<usize> = (0..64).map(|_| rng.below(1000)).collect();
        let sample = rng.sample_indices(100, 10);
        (raw, uniforms, normals, bounded, sample)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "raw u64 stream diverged");
    // Float comparisons are exact on purpose: same bits or bust.
    assert_eq!(a.1, b.1, "uniform stream diverged");
    assert_eq!(a.2, b.2, "normal stream diverged");
    assert_eq!(a.3, b.3, "below() stream diverged");
    assert_eq!(a.4, b.4, "sample_indices diverged");
}

/// Forked child generators derive deterministically from the parent.
#[test]
fn forked_rngs_are_deterministic() {
    let run = || {
        let mut parent = Rng64::new(42);
        let mut child = parent.fork(0xFEED);
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        (c, p)
    };
    assert_eq!(run(), run());
}

/// Same seed ⇒ the synthetic corpus renders identical videos, and
/// different seeds actually change the data.
#[test]
fn synthetic_dataset_is_bit_identical_across_runs() {
    let build = |seed| SyntheticDataset::subsampled(DatasetKind::Ucf101Like, ClipSpec::tiny(), seed, 2, 1);
    let a = build(7);
    let b = build(7);
    for &id in a.train().iter().chain(a.test()) {
        assert_eq!(
            a.video(id).tensor().as_slice(),
            b.video(id).tensor().as_slice(),
            "video {id:?} diverged between identically-seeded datasets"
        );
    }
    let c = build(8);
    let id = VideoId { class: 0, instance: 0 };
    assert_ne!(
        a.video(id).tensor().as_slice(),
        c.video(id).tensor().as_slice(),
        "different seeds must produce different corpora"
    );
}

/// Same seed ⇒ the full black-box attack (surrogate steal + DUO search)
/// emits a bit-identical perturbation across two fully independent runs.
#[test]
fn attack_perturbation_is_bit_identical_across_runs() {
    let attack_once = || {
        let mut rng = Rng64::new(501);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 501, 3, 1);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 8).copied().collect();
        let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let system = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
        )
        .unwrap();
        let mut bb = BlackBox::new(system);

        let mut attack_rng = Rng64::new(502);
        let probes: Vec<VideoId> =
            ds.test().iter().filter(|id| id.class < 8).copied().collect();
        let (surrogate, _) =
            steal_surrogate(&mut bb, &ds, &probes, StealConfig::quick(), &mut attack_rng).unwrap();

        let v = ds.video(VideoId { class: 0, instance: 0 });
        let v_t = ds.video(VideoId { class: 6, instance: 0 });
        let mut cfg = DuoConfig::for_spec(ClipSpec::tiny());
        cfg.transfer.outer_iters = 1;
        cfg.transfer.theta_steps = 2;
        cfg.transfer.admm_iters = 10;
        cfg.query.iter_num_q = 5;
        cfg.iter_num_h = 1;
        let mut attack = DuoAttack::new(surrogate, cfg);
        let outcome = attack.run(&mut bb, &v, &v_t, &mut attack_rng).unwrap();
        (outcome.perturbation.as_slice().to_vec(), outcome.queries, outcome.spa())
    };
    let a = attack_once();
    let b = attack_once();
    assert_eq!(a.1, b.1, "query counts diverged");
    assert_eq!(a.2, b.2, "Spa diverged");
    assert_eq!(a.0, b.0, "perturbation bits diverged between identical runs");
}

/// The threaded retrieval fan-out cannot perturb results: scoring is
/// read-only per shard and the merge re-sorts, so scheduling order must
/// not leak into rankings.
#[test]
fn threaded_retrieval_is_deterministic() {
    let build = |threaded| {
        let mut rng = Rng64::new(601);
        let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 601, 2, 1);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 10).copied().collect();
        let victim = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let sys = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 5, nodes: 3, threaded, ..Default::default() },
        )
        .unwrap();
        (sys, ds)
    };
    let (serial, ds) = build(false);
    let (threaded_a, _) = build(true);
    let (threaded_b, _) = build(true);
    for class in 0..10u32 {
        let probe = ds.video(VideoId { class, instance: 0 });
        let s = serial.retrieve(&probe).unwrap();
        assert_eq!(s, threaded_a.retrieve(&probe).unwrap());
        assert_eq!(s, threaded_b.retrieve(&probe).unwrap());
    }
}
