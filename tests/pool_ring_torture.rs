//! Torture tests for the job-ring dispatch layer of the thread pool.
//!
//! The pool feeds workers through persistent bounded per-worker rings
//! (one long-lived channel pair per worker) instead of per-call channel
//! setup, stamping every batch with a generation counter that each
//! result echoes back. These tests attack exactly that machinery: ring
//! wraparound under a single giant batch, generation accounting across
//! interleaved and failed batches, the caller-inline fast path
//! (`run_with_local`), and drop with jobs still queued on the rings.
//! `tests/pool_torture.rs` covers the pool's older ordering/panic
//! guarantees; everything here is specific to the ring protocol.

use duo_tensor::{matmul_into_serial, matmul_into_with, Rng64, Tensor, ThreadPool, RING_CAPACITY};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn one_batch_wraps_every_ring_several_times() {
    // 3 workers and far more jobs per ring than its capacity: dispatch
    // must block on the full ring and resume as workers drain it, with
    // no job lost, duplicated, or reordered.
    let pool = ThreadPool::new(3);
    let total = 3 * RING_CAPACITY * 4 + 17;
    let ran = Arc::new(AtomicUsize::new(0));
    let jobs: Vec<_> = (0..total)
        .map(|i| {
            let ran = Arc::clone(&ran);
            move || {
                ran.fetch_add(1, Ordering::Relaxed);
                i
            }
        })
        .collect();
    let results = pool.run(jobs).unwrap();
    assert_eq!(results, (0..total).collect::<Vec<_>>());
    assert_eq!(ran.load(Ordering::Relaxed), total, "every job ran exactly once");
}

#[test]
fn generation_counter_advances_once_per_batch_and_survives_failures() {
    let pool = ThreadPool::new(2);
    let base = pool.generation();
    pool.run((0..4usize).map(|i| move || i).collect::<Vec<_>>()).unwrap();
    assert_eq!(pool.generation(), base + 1, "a batch claims exactly one generation");

    // A failing batch still claims (and retires) its generation…
    let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
        .map(|i| {
            Box::new(move || {
                assert!(i != 2, "ring torture panic");
                i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    pool.run(jobs).expect_err("poisoned batch must fail");
    assert_eq!(pool.generation(), base + 2);

    // …and empty batches claim none.
    pool.run(Vec::<Box<dyn FnOnce() -> usize + Send>>::new()).unwrap();
    assert_eq!(pool.generation(), base + 2, "empty batch must not burn a generation");

    // The rings stay serviceable on the very next generation.
    let ok = pool.run((0..4usize).map(|i| move || i * 7).collect::<Vec<_>>()).unwrap();
    assert_eq!(ok, vec![0, 7, 14, 21]);
}

#[test]
fn run_with_local_overlaps_caller_work_with_ring_jobs() {
    let pool = ThreadPool::new(2);
    for round in 0..50 {
        let worker_sum = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                let worker_sum = Arc::clone(&worker_sum);
                move || {
                    worker_sum.fetch_add(i, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        // The local closure borrows stack state mutably — no 'static, no
        // Arc — which is the whole point of the caller-inline path.
        let mut local_ran = false;
        let (results, ()) = pool.run_with_local(jobs, || {
            local_ran = true;
        });
        assert!(local_ran, "local closure must run (round {round})");
        assert_eq!(results.unwrap(), (0..8).collect::<Vec<_>>());
        assert_eq!(worker_sum.load(Ordering::Relaxed), 28);
    }
}

#[test]
fn run_with_local_surfaces_ring_panics_after_local_work() {
    let pool = ThreadPool::new(2);
    let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
        .map(|i| {
            Box::new(move || {
                assert!(i != 1, "ring panic under local overlap");
                i
            }) as Box<dyn FnOnce() -> usize + Send>
        })
        .collect();
    let mut local_ran = false;
    let (results, ()) = pool.run_with_local(jobs, || {
        local_ran = true;
    });
    assert!(local_ran, "local work must complete even when ring jobs panic");
    let err = results.expect_err("the panic must still surface");
    assert_eq!(err.index, 1);
    assert!(err.message.contains("ring panic under local overlap"), "{}", err.message);
}

#[test]
fn drop_with_queued_ring_jobs_finishes_them_before_join() {
    // Fill the rings well past a single in-flight job per worker, then
    // drop the pool from another thread's perspective mid-drain: Drop
    // disconnects the rings, workers finish what is queued, and the
    // batch in flight still completes (run returns before drop begins
    // here, so the invariant under test is that repeated churn with deep
    // rings never wedges the join).
    let completed = Arc::new(AtomicUsize::new(0));
    let per_batch = 2 * RING_CAPACITY + 9;
    for _ in 0..20 {
        let pool = ThreadPool::new(2);
        let jobs: Vec<_> = (0..per_batch)
            .map(|_| {
                let completed = Arc::clone(&completed);
                move || {
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run(jobs).unwrap();
        drop(pool);
    }
    assert_eq!(completed.load(Ordering::Relaxed), 20 * per_batch);
}

#[test]
fn repeated_contained_panics_never_leak_ring_slots() {
    // A panicking batch after a wraparound-sized batch, 10 rounds: if a
    // failed batch left stale entries on any ring, a later batch would
    // receive a foreign-generation result and the pool would assert.
    let pool = ThreadPool::new(2);
    for round in 0..10 {
        let big = 2 * RING_CAPACITY + 5;
        let ok = pool.run((0..big).map(|i| move || i).collect::<Vec<_>>()).unwrap();
        assert_eq!(ok.len(), big);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..5usize)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 4, "slot-leak probe panic (round {round})");
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = pool.run(jobs).expect_err("poisoned batch must fail");
        assert_eq!(err.index, 4);
    }
}

#[test]
fn oversubscribed_matmul_stays_bitwise_deterministic_on_rings() {
    // End-to-end: the GEMM dispatch path (caller-inline first stripe +
    // ring jobs for the rest) at 8 workers on however few cores the host
    // has, against the serial reference, across repeats.
    let mut rng = Rng64::new(0x41f6);
    let a = Tensor::randn(&[41, 83], 1.0, rng.as_rng());
    let b = Tensor::randn(&[83, 59], 1.0, rng.as_rng());
    let mut serial = Tensor::zeros(&[41, 59]);
    matmul_into_serial(&a, &b, &mut serial).unwrap();
    let want: Vec<u32> = serial.as_slice().iter().map(|v| v.to_bits()).collect();

    let pool = ThreadPool::new(8);
    for round in 0..5 {
        let mut out = Tensor::full(&[41, 59], f32::NAN);
        matmul_into_with(&a, &b, &mut out, &pool).unwrap();
        let got: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, got, "round {round} drifted on the ring dispatch path");
    }
}

#[test]
fn nested_kernel_calls_inside_ring_jobs_do_not_deadlock() {
    // One worker, jobs that themselves call the auto-parallel matmul
    // entry point: the worker-context guard must route the nested call
    // to the serial kernel — a nested blocking `run` on the same ring
    // would deadlock here.
    let mut rng = Rng64::new(0x51);
    let a = Arc::new(Tensor::randn(&[72, 48], 1.0, rng.as_rng()));
    let b = Arc::new(Tensor::randn(&[48, 64], 1.0, rng.as_rng()));
    let mut serial = Tensor::zeros(&[72, 64]);
    matmul_into_serial(&a, &b, &mut serial).unwrap();
    let want: Vec<u32> = serial.as_slice().iter().map(|v| v.to_bits()).collect();

    let pool = ThreadPool::new(1);
    let jobs: Vec<_> = (0..4)
        .map(|_| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            move || {
                assert!(ThreadPool::is_worker());
                let mut out = Tensor::zeros(&[72, 64]);
                duo_tensor::matmul_into(&a, &b, &mut out).unwrap();
                out.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
            }
        })
        .collect();
    for got in pool.run(jobs).unwrap() {
        assert_eq!(want, got, "nested kernel call drifted from serial");
    }
}
