//! Property-based coverage of the streaming blue-team detector's
//! determinism doctrine, end to end through `duo-serve`:
//!
//! 1. **Worker-count independence.** The per-account verdict sequence is
//!    decided at admission under the clients lock, so the same seeded
//!    interleaved traffic produces byte-identical verdict JSON at worker
//!    counts 1/2/8.
//! 2. **Reference-model equivalence.** The ring-buffer detector equals a
//!    naive model that keeps the *entire* history and recomputes over
//!    the trailing window each step — bit for bit, f32s compared by bits.
//! 3. **Monotonicity.** Shrinking every perturbation step toward the
//!    base clip (a strictly more self-similar query sequence) never
//!    lowers the per-step self-similarity score.
//!
//! This suite persists failing case seeds to
//! `tests/defense_stream_properties.regressions` (see [`duo_check`]);
//! past failures replay before fresh generation.

use duo::prelude::*;
use duo::video::SyntheticVideoGenerator;
use duo_check::{check, prop_assert, prop_assert_eq, Config};
use duo_tensor::RandomSource;

fn config() -> Config {
    // Property 1 stands up three live services per case; keep the case
    // count small like the campaign suite does.
    Config::default().with_cases(3).with_regressions(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/defense_stream_properties.regressions"
    ))
}

/// Streaming calibration with the verdict log switched on.
fn recording_stream() -> StreamConfig {
    StreamConfig { record_verdicts: true, ..StreamConfig::default() }
}

/// A tiny defended service over an untrained victim world.
fn defended_service(seed: u64, workers: usize) -> RetrievalService {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 8, 1, 0);
    let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let system = RetrievalSystem::build(
        victim,
        &ds,
        ds.train(),
        RetrievalConfig { m: 4, nodes: 2, threaded: false, ..Default::default() },
    )
    .unwrap();
    let config = ServeConfig {
        workers,
        defense: Some(DefenseConfig { stream: recording_stream(), purify: Purify::None }),
        ..ServeConfig::default()
    };
    RetrievalService::start(system, config).unwrap()
}

/// `base` with `k` seeded pixels nudged by up to `tau` — one optimizer
/// candidate in an adversarial query stream.
fn perturbed(base: &Video, rng: &mut Rng64, k: usize, tau: f32) -> Video {
    let mut v = base.clone();
    let px = v.tensor_mut().as_mut_slice();
    for _ in 0..k {
        let i = (rng.next_u64() % px.len() as u64) as usize;
        px[i] = (px[i] + tau * (2.0 * rng.uniform() - 1.0)).clamp(0.0, 255.0);
    }
    v
}

/// The naive reference detector: keeps the full observation history and
/// rescans the trailing `window` sketches (oldest→newest, the ring's
/// iteration order) on every step. Same escalation state machine.
struct NaiveDetector {
    config: StreamConfig,
    history: Vec<ClipSketch>,
    flags: u64,
    throttle_seen: u64,
}

impl NaiveDetector {
    fn new(config: StreamConfig) -> NaiveDetector {
        NaiveDetector { config, history: Vec::new(), flags: 0, throttle_seen: 0 }
    }

    fn observe(&mut self, sketch: &ClipSketch) -> StreamVerdict {
        let cfg = &self.config;
        let start = self.history.len().saturating_sub(cfg.window);
        let window = &self.history[start..];
        let mut self_sim = 0.0f32;
        let mut near_dups = 0u32;
        for entry in window {
            let d = sketch.msd(entry);
            self_sim = self_sim.max(1.0 / (1.0 + d / cfg.sim_scale));
            if d > 0.0 && d <= cfg.near_dup_epsilon {
                near_dups += 1;
            }
        }
        let mut hits = 0u32;
        hits += u32::from(!window.is_empty() && self_sim >= cfg.self_sim_threshold);
        hits += u32::from(near_dups >= cfg.near_dup_min);
        hits += u32::from(sketch.energy >= cfg.energy_threshold);
        let flagged = hits >= cfg.flag_votes;
        if flagged {
            self.flags += 1;
        }
        let action = if self.flags >= cfg.reject_after {
            DetectorAction::Reject
        } else if self.flags >= cfg.throttle_after {
            let slot = self.throttle_seen;
            self.throttle_seen += 1;
            if slot % cfg.throttle_stride == 0 {
                DetectorAction::Admit
            } else {
                DetectorAction::Throttle
            }
        } else {
            DetectorAction::Admit
        };
        let verdict = StreamVerdict {
            seq: self.history.len() as u64,
            self_sim,
            near_dups,
            energy: sketch.energy,
            hits,
            flagged,
            flags_total: self.flags,
            action,
        };
        self.history.push(*sketch);
        verdict
    }
}

/// Renders a verdict slice the way [`StreamDetector::verdicts_json`]
/// does, so service-side logs byte-compare across runs.
fn verdicts_json(verdicts: &[StreamVerdict]) -> String {
    let rows: Vec<duo_tensor::Json> =
        verdicts.iter().map(duo_tensor::ToJson::to_json).collect();
    duo_tensor::Json::Array(rows).to_string()
}

check! {
    #![config(config())]

    /// Same seeded interleaved traffic (an adversarial near-dup lane and
    /// a benign distinct-clip lane, strictly alternating) must log
    /// byte-identical per-account verdicts at any worker count.
    fn verdicts_are_worker_count_independent(
        world_seed in 0u64..1_000,
        traffic_seed in 0u64..1_000_000,
        rounds in 4usize..12,
    ) {
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), world_seed ^ 0xFACE);
        let base = gen.generate(0, 0);
        let mut logs: Vec<(String, String)> = Vec::new();
        for workers in [1usize, 2, 8] {
            let svc = defended_service(world_seed, workers);
            let red = svc.client(None, None);
            let blue = svc.client(None, None);
            let mut rng = Rng64::new(traffic_seed);
            for round in 0..rounds {
                // Outcome (admit/throttle/quarantine) is part of the
                // verdict log; the call result itself is not asserted.
                let _ = red.retrieve(&perturbed(&base, &mut rng, 200, 20.0));
                let _ = blue.retrieve(&gen.generate((round % 8) as u32, 1));
            }
            let red_log = red.defense_verdicts().expect("defended service records");
            let blue_log = blue.defense_verdicts().expect("defended service records");
            prop_assert_eq!(red_log.len(), rounds, "one verdict per red submission");
            prop_assert_eq!(blue_log.len(), rounds, "one verdict per blue submission");
            logs.push((verdicts_json(&red_log), verdicts_json(&blue_log)));
            svc.shutdown();
        }
        for pair in logs.windows(2) {
            prop_assert_eq!(
                &pair[0].0, &pair[1].0,
                "red lane verdicts must not depend on worker count"
            );
            prop_assert_eq!(
                &pair[0].1, &pair[1].1,
                "blue lane verdicts must not depend on worker count"
            );
        }
    }

    /// The ring-buffer detector must equal the full-history naive model
    /// bit for bit, at any window size, over mixed traffic.
    fn ring_detector_equals_naive_recompute(
        seed in 0u64..1_000_000,
        window in 1usize..12,
        steps in 8usize..40,
    ) {
        let config = StreamConfig { window, record_verdicts: false, ..StreamConfig::default() };
        let mut ring = StreamDetector::new(config);
        let mut naive = NaiveDetector::new(config);
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), seed ^ 0xD00D);
        let base = gen.generate(0, 0);
        let mut rng = Rng64::new(seed);
        for step in 0..steps {
            // Mix near-duplicate candidates, exact replays, and distinct
            // clips so the ring cycles through every signal.
            let clip = match rng.next_u64() % 3 {
                0 => perturbed(&base, &mut rng, 150, 25.0),
                1 => base.clone(),
                _ => gen.generate((step % 6) as u32, 1),
            };
            let sketch = ClipSketch::of(&clip);
            let a = ring.observe(&sketch);
            let b = naive.observe(&sketch);
            prop_assert_eq!(a.seq, b.seq, "seq diverged at step {step}");
            prop_assert_eq!(
                a.self_sim.to_bits(), b.self_sim.to_bits(),
                "self_sim diverged at step {step}: {} vs {}", a.self_sim, b.self_sim
            );
            prop_assert_eq!(a.near_dups, b.near_dups, "near_dups diverged at step {step}");
            prop_assert_eq!(
                a.energy.to_bits(), b.energy.to_bits(),
                "energy diverged at step {step}"
            );
            prop_assert_eq!(a.hits, b.hits, "hits diverged at step {step}");
            prop_assert_eq!(a.flagged, b.flagged, "flag diverged at step {step}");
            prop_assert_eq!(a.flags_total, b.flags_total, "flags diverged at step {step}");
            prop_assert_eq!(a.action, b.action, "action diverged at step {step}");
        }
    }

    /// Interpolating every query strictly closer to the base clip can
    /// only raise (never lower) each step's self-similarity score.
    fn tighter_query_sequences_never_lower_self_similarity(
        seed in 0u64..1_000_000,
        alpha_lo in 0.05f32..0.4,
        spread in 1.5f32..4.0,
        steps in 3usize..10,
    ) {
        let alpha_hi = alpha_lo * spread;
        let gen = SyntheticVideoGenerator::new(ClipSpec::tiny(), seed ^ 0xBA5E);
        let base = gen.generate(0, 0);
        let lerp = |alpha: f32, toward: &Video| {
            let mut v = base.clone();
            let dst = v.tensor_mut().as_mut_slice();
            for (d, &t) in dst.iter_mut().zip(toward.tensor().as_slice()) {
                *d += alpha * (t - *d);
            }
            v
        };
        let config = StreamConfig::default();
        let mut tight = StreamDetector::new(config);
        let mut loose = StreamDetector::new(config);
        for step in 0..steps {
            let toward = gen.generate((step % 6) as u32, 1);
            let vt = tight.observe(&ClipSketch::of(&lerp(alpha_lo, &toward)));
            let vl = loose.observe(&ClipSketch::of(&lerp(alpha_hi, &toward)));
            // Tolerance: pooling is linear only up to f32 rounding.
            prop_assert!(
                vt.self_sim >= vl.self_sim - 1e-5,
                "step {step}: tighter sequence scored {} below looser {}",
                vt.self_sim, vl.self_sim
            );
        }
    }
}
