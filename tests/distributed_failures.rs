//! Failure injection on the distributed retrieval substrate while the
//! attack pipeline is live.

use duo::prelude::*;

fn world(seed: u64) -> (RetrievalSystem, SyntheticDataset) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), seed, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let victim = Backbone::new(Architecture::SlowFast, BackboneConfig::tiny(), &mut rng).unwrap();
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 4, threaded: false, ..Default::default() },
    )
    .unwrap();
    (system, ds)
}

#[test]
fn node_loss_mid_attack_degrades_gracefully() {
    let (system, ds) = world(501);
    let mut bb = BlackBox::new(system);
    let mut rng = Rng64::new(502);
    let v = ds.video(VideoId { class: 0, instance: 0 });
    let v_t = ds.video(VideoId { class: 5, instance: 0 });

    let cfg = VanillaConfig { k: 150, n: 3, tau: 30.0, iter_num_q: 4 };
    let before = VanillaAttack::new(cfg).run(&mut bb, &v, &v_t, &mut rng).unwrap();
    assert!(before.queries > 0);

    // Kill half the shards; the attack keeps running against the degraded
    // service and retrieval lists keep the configured length.
    bb.system_mut().nodes()[0].set_offline();
    bb.system_mut().nodes()[1].set_offline();
    let after = VanillaAttack::new(cfg).run(&mut bb, &v, &v_t, &mut rng).unwrap();
    assert!(after.queries > 0);
    let list = bb.retrieve(&after.adversarial).unwrap();
    assert_eq!(list.len(), 5, "degraded service still returns top-m");

    // Full outage surfaces as an error, not a panic or silent empty list.
    for node in bb.system_mut().nodes() {
        node.set_offline();
    }
    assert!(bb.retrieve(&v).is_err());
}

#[test]
fn recovery_restores_identical_results() {
    let (system, ds) = world(511);
    let v = ds.video(VideoId { class: 1, instance: 0 });
    let full = system.retrieve(&v).unwrap();
    system.nodes()[2].set_offline();
    let degraded = system.retrieve(&v).unwrap();
    system.nodes()[2].set_online();
    let recovered = system.retrieve(&v).unwrap();
    assert_eq!(full, recovered, "recovery must restore the exact ranking");
    assert_eq!(degraded.len(), full.len());
}

#[test]
fn sharding_layout_does_not_change_results() {
    let mut rng = Rng64::new(521);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 521, 2, 0);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let mut results = Vec::new();
    for nodes in [1usize, 3, 7] {
        let mut r = Rng64::new(522); // same weights each time
        let _ = &mut rng;
        let victim = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut r).unwrap();
        let system = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 6, nodes, threaded: false, ..Default::default() },
        )
        .unwrap();
        results.push(system.retrieve(&ds.video(gallery[0])).unwrap());
    }
    assert_eq!(results[0], results[1], "1 vs 3 shards");
    assert_eq!(results[0], results[2], "1 vs 7 shards");
}

/// A node inside a flap window must be indistinguishable from a
/// hard-offline node: the degraded ranking is exactly the global top-m
/// over the surviving shards.
#[test]
fn flap_window_ranking_matches_hard_offline_node() {
    let make = || {
        let mut rng = Rng64::new(541);
        let ds =
            SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 541, 2, 1);
        let gallery: Vec<VideoId> =
            ds.train().iter().filter(|id| id.class < 10).copied().collect();
        let victim = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
        let system = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 5, nodes: 4, threaded: false, ..Default::default() },
        )
        .unwrap();
        (system, ds)
    };
    let (mut flapping, ds) = make();
    let (hard, _) = make();
    flapping.nodes()[2].set_fault_plan(Some(FaultPlan::none(541).with_flap(0, u64::MAX)));
    flapping.set_resilience(ResilienceConfig::hardened(542));
    hard.nodes()[2].set_offline();
    for &id in ds.test().iter().filter(|id| id.class < 10) {
        let feature = flapping.embed(&ds.video(id)).unwrap();
        let got = flapping.retrieve_resilient(&feature).unwrap();
        assert_eq!(got.coverage.answered, 3, "exactly the flapped shard is missing");
        assert_eq!(
            got.ids,
            hard.retrieve_by_feature(&feature).unwrap(),
            "degraded ranking must be the top-m over the surviving shards"
        );
    }
}

/// A node flapping under concurrent duo-serve traffic: every client keeps
/// getting full-length (possibly degraded) rankings, and the query-budget
/// ledgers stay exact — `served + failed` equals the sum of charges, and
/// deadline-shed requests are never charged at all.
#[test]
fn flapping_node_under_concurrent_serve_keeps_ledgers_exact() {
    let (mut system, ds) = world(551);
    // Node 1 flaps over the early traffic; node 3 suffers 30% transients
    // throughout. The hardened policy retries/hedges around both.
    system.nodes()[1].set_fault_plan(Some(FaultPlan::none(551).with_flap(0, 20)));
    system.nodes()[3].set_fault_plan(Some(FaultPlan::transient(552, 0.3)));
    system.set_resilience(ResilienceConfig::hardened(553));
    let service = RetrievalService::start(system, ServeConfig::default()).unwrap();

    let probes: Vec<Video> = ds
        .test()
        .iter()
        .filter(|id| id.class < 10)
        .map(|&id| ds.video(id))
        .collect();
    let charged: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..3 {
            let client = service.client(Some(64), None);
            let probes = &probes;
            handles.push(scope.spawn(move || {
                let mut oks = 0u64;
                let mut fails = 0u64;
                for _ in 0..3 {
                    for video in probes {
                        match client.retrieve(video) {
                            Ok(list) => {
                                assert_eq!(list.len(), 5, "degraded lists keep top-m length");
                                oks += 1;
                            }
                            // Model-reached failures are charged; admission
                            // rejections (rate/overload) never are.
                            Err(duo::serve::ServeError::Retrieval(_)) => fails += 1,
                            Err(_) => {}
                        }
                    }
                }
                assert_eq!(
                    client.queries_used(),
                    oks + fails,
                    "a client is charged exactly for queries that reached the model"
                );
                client.queries_used()
            }));
        }

        // A fourth client whose every request expires before service: all
        // shed, all refunded, none ever charged to its ledger.
        let shedder = service.client(Some(64), None);
        for video in probes.iter().take(4) {
            let got = shedder.retrieve_with_deadline(video, std::time::Duration::ZERO);
            assert!(
                matches!(got, Err(duo::serve::ServeError::DeadlineExceeded)),
                "zero deadline must shed, got {got:?}"
            );
        }
        assert_eq!(shedder.queries_used(), 0, "shed requests are refunded, never charged");
        assert_eq!(shedder.budget_remaining(), Some(64));

        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let stats = service.shutdown();
    assert_eq!(
        charged,
        stats.served + stats.failed,
        "ledger drift between client charges and model-reached queries"
    );
    assert_eq!(stats.deadline_misses, 4, "every zero-deadline request was shed");
    assert!(stats.degraded > 0, "the flap window must have produced degraded coverage");
    assert!(stats.retries > 0, "the transient node must have forced retries");
}

#[test]
fn threaded_fanout_matches_inline_under_failures() {
    let mut r1 = Rng64::new(531);
    let mut r2 = Rng64::new(531);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 531, 2, 0);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let make = |rng: &mut Rng64, threaded: bool| {
        let victim = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), rng).unwrap();
        RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 4, nodes: 3, threaded, ..Default::default() },
        )
        .unwrap()
    };
    let inline = make(&mut r1, false);
    let threaded = make(&mut r2, true);
    inline.nodes()[1].set_offline();
    threaded.nodes()[1].set_offline();
    let v = ds.video(gallery[3]);
    assert_eq!(inline.retrieve(&v).unwrap(), threaded.retrieve(&v).unwrap());
}
