//! Failure injection on the distributed retrieval substrate while the
//! attack pipeline is live.

use duo::prelude::*;

fn world(seed: u64) -> (RetrievalSystem, SyntheticDataset) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), seed, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let victim = Backbone::new(Architecture::SlowFast, BackboneConfig::tiny(), &mut rng).unwrap();
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 4, threaded: false },
    )
    .unwrap();
    (system, ds)
}

#[test]
fn node_loss_mid_attack_degrades_gracefully() {
    let (system, ds) = world(501);
    let mut bb = BlackBox::new(system);
    let mut rng = Rng64::new(502);
    let v = ds.video(VideoId { class: 0, instance: 0 });
    let v_t = ds.video(VideoId { class: 5, instance: 0 });

    let cfg = VanillaConfig { k: 150, n: 3, tau: 30.0, iter_num_q: 4 };
    let before = VanillaAttack::new(cfg).run(&mut bb, &v, &v_t, &mut rng).unwrap();
    assert!(before.queries > 0);

    // Kill half the shards; the attack keeps running against the degraded
    // service and retrieval lists keep the configured length.
    bb.system_mut().nodes()[0].set_offline();
    bb.system_mut().nodes()[1].set_offline();
    let after = VanillaAttack::new(cfg).run(&mut bb, &v, &v_t, &mut rng).unwrap();
    assert!(after.queries > 0);
    let list = bb.retrieve(&after.adversarial).unwrap();
    assert_eq!(list.len(), 5, "degraded service still returns top-m");

    // Full outage surfaces as an error, not a panic or silent empty list.
    for node in bb.system_mut().nodes() {
        node.set_offline();
    }
    assert!(bb.retrieve(&v).is_err());
}

#[test]
fn recovery_restores_identical_results() {
    let (system, ds) = world(511);
    let v = ds.video(VideoId { class: 1, instance: 0 });
    let full = system.retrieve(&v).unwrap();
    system.nodes()[2].set_offline();
    let degraded = system.retrieve(&v).unwrap();
    system.nodes()[2].set_online();
    let recovered = system.retrieve(&v).unwrap();
    assert_eq!(full, recovered, "recovery must restore the exact ranking");
    assert_eq!(degraded.len(), full.len());
}

#[test]
fn sharding_layout_does_not_change_results() {
    let mut rng = Rng64::new(521);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 521, 2, 0);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 10).copied().collect();
    let mut results = Vec::new();
    for nodes in [1usize, 3, 7] {
        let mut r = Rng64::new(522); // same weights each time
        let _ = &mut rng;
        let victim = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut r).unwrap();
        let system = RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 6, nodes, threaded: false },
        )
        .unwrap();
        results.push(system.retrieve(&ds.video(gallery[0])).unwrap());
    }
    assert_eq!(results[0], results[1], "1 vs 3 shards");
    assert_eq!(results[0], results[2], "1 vs 7 shards");
}

#[test]
fn threaded_fanout_matches_inline_under_failures() {
    let mut r1 = Rng64::new(531);
    let mut r2 = Rng64::new(531);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), 531, 2, 0);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let make = |rng: &mut Rng64, threaded: bool| {
        let victim = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), rng).unwrap();
        RetrievalSystem::build(
            victim,
            &ds,
            &gallery,
            RetrievalConfig { m: 4, nodes: 3, threaded },
        )
        .unwrap()
    };
    let inline = make(&mut r1, false);
    let threaded = make(&mut r2, true);
    inline.nodes()[1].set_offline();
    threaded.nodes()[1].set_offline();
    let v = ds.video(gallery[3]);
    assert_eq!(inline.retrieve(&v).unwrap(), threaded.retrieve(&v).unwrap());
}
