//! Property-based coverage of the shard index layer: the exact-mode
//! bit-identity contract against the seed per-entry scan, the
//! `nprobe == nlist` ⇒ exhaustive equivalence of IVF, and monotonicity
//! of recall@m in `nprobe` (DESIGN.md §6d's equivalence contract).
//!
//! This suite persists failing case seeds to
//! `tests/index_properties.regressions` (see [`duo_check`]); past
//! failures replay before fresh generation.

use duo::prelude::*;
use duo_check::{check, prop_assert, prop_assert_eq, Config};
use duo_retrieval::ScoredId;

fn config() -> Config {
    Config::default()
        .with_cases(48)
        .with_regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/index_properties.regressions"))
}

/// A random gallery of `n` unique ids with `dim`-dimensional features,
/// a pure function of `seed`.
fn gallery(seed: u64, n: usize, dim: usize) -> Vec<(VideoId, Tensor)> {
    let mut rng = Rng64::new(seed);
    (0..n)
        .map(|i| {
            let data: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
            let id = VideoId { class: (i / 4) as u32, instance: (i % 4) as u32 };
            (id, Tensor::from_vec(data, &[dim]).unwrap())
        })
        .collect()
}

fn query(seed: u64, dim: usize) -> Tensor {
    let mut rng = Rng64::new(seed ^ 0xA5A5_A5A5);
    let data: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
    Tensor::from_vec(data, &[dim]).unwrap()
}

/// The seed implementation of `DataNode::scan`, verbatim: per-entry
/// `Tensor::sq_distance`, full sort with the id tie-break, truncate.
fn reference_scan(entries: &[(VideoId, Tensor)], q: &Tensor, m: usize) -> Vec<ScoredId> {
    let mut scored: Vec<ScoredId> = entries
        .iter()
        .map(|(id, feat)| ScoredId { id: *id, distance: feat.sq_distance(q).unwrap() })
        .collect();
    scored.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
    });
    scored.truncate(m);
    scored
}

check! {
    #![config(config())]

    /// Exact mode must reproduce the seed scan bit for bit: same ids in
    /// the same order, and distances equal at the representation level
    /// (`to_bits`), not merely approximately.
    fn exact_mode_is_bit_identical_to_seed_scan(
        seed in 0u64..1_000_000,
        n in 1usize..120,
        dim in 1usize..12,
        m in 1usize..20,
    ) {
        let entries = gallery(seed, n, dim);
        let q = query(seed, dim);
        let node = DataNode::new("p", entries.clone());
        let got = node.query(&q, m).unwrap();
        let want = reference_scan(&entries, &q, m);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(g.distance.to_bits(), w.distance.to_bits());
        }
    }

    /// Probing every list makes IVF exhaustive: the candidate set is the
    /// whole shard, so results must equal exact mode exactly (same total
    /// order, same distances).
    fn full_probe_ivf_equals_exact(
        seed in 0u64..1_000_000,
        n in 1usize..100,
        dim in 1usize..10,
        nlist in 1usize..12,
    ) {
        let m = 1 + (seed % 16) as usize;
        let entries = gallery(seed, n, dim);
        let q = query(seed, dim);
        let exact = DataNode::new("e", entries.clone());
        let ivf = DataNode::with_index_mode(
            "i", entries, IndexMode::ivf(nlist, nlist), shard_seed(seed as usize),
        ).unwrap();
        prop_assert_eq!(ivf.query(&q, m).unwrap(), exact.query(&q, m).unwrap());
    }

    /// Widening the probe never hurts: the candidate set at `nprobe+1`
    /// is a superset of the set at `nprobe`, so recall@m against the
    /// exact answer is monotone non-decreasing, ending at 1 when every
    /// list is probed.
    fn recall_is_monotone_in_nprobe(
        seed in 0u64..1_000_000,
        n in 8usize..100,
        dim in 1usize..8,
        nlist in 2usize..10,
    ) {
        let m = 1 + (seed % 12) as usize;
        let entries = gallery(seed, n, dim);
        let q = query(seed, dim);
        let exact_ids: Vec<VideoId> = reference_scan(&entries, &q, m)
            .into_iter().map(|s| s.id).collect();
        let mut last = 0.0f32;
        for nprobe in 1..=nlist {
            let node = DataNode::with_index_mode(
                "i", entries.clone(), IndexMode::ivf(nlist, nprobe), shard_seed(3),
            ).unwrap();
            let approx_ids: Vec<VideoId> =
                node.query(&q, m).unwrap().into_iter().map(|s| s.id).collect();
            let r = recall_at_m(&approx_ids, &exact_ids);
            prop_assert!(
                r >= last,
                "recall dropped from {} to {} at nprobe {}", last, r, nprobe
            );
            last = r;
        }
        prop_assert_eq!(last, 1.0);
    }
}
