//! Property-based coverage of the shard index layer: the exact-mode
//! bit-identity contract against the seed per-entry scan, the
//! `nprobe == nlist` ⇒ exhaustive equivalence of IVF, monotonicity of
//! recall@m in `nprobe` (DESIGN.md §6d's equivalence contract), and the
//! compressed-mode contracts from §6h — full probe + full-depth exact
//! rerank ≡ exact at the bit level for PQ and SQ8, recall monotone in
//! `nprobe` under full-depth rerank, the SQ8 per-dimension quantization
//! error bound, and `DUOINDX3` save → load → save byte-identity.
//!
//! The PQ monotonicity property deliberately pins `rerank` to the full
//! candidate depth: under pure ADC ranking a wider probe can *demote* a
//! true neighbour (its quantized distance may beat a closer row's), so
//! recall is only provably monotone when the rerank tail rescores every
//! candidate exactly — which is exactly the superset argument the IVF
//! property uses.
//!
//! This suite persists failing case seeds to
//! `tests/index_properties.regressions` (see [`duo_check`]); past
//! failures replay before fresh generation.

use duo::prelude::*;
use duo_check::{check, prop_assert, prop_assert_eq, Config};
use duo_retrieval::ScoredId;

fn config() -> Config {
    Config::default()
        .with_cases(48)
        .with_regressions(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/index_properties.regressions"))
}

/// A random gallery of `n` unique ids with `dim`-dimensional features,
/// a pure function of `seed`.
fn gallery(seed: u64, n: usize, dim: usize) -> Vec<(VideoId, Tensor)> {
    let mut rng = Rng64::new(seed);
    (0..n)
        .map(|i| {
            let data: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
            let id = VideoId { class: (i / 4) as u32, instance: (i % 4) as u32 };
            (id, Tensor::from_vec(data, &[dim]).unwrap())
        })
        .collect()
}

fn query(seed: u64, dim: usize) -> Tensor {
    let mut rng = Rng64::new(seed ^ 0xA5A5_A5A5);
    let data: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
    Tensor::from_vec(data, &[dim]).unwrap()
}

/// The seed implementation of `DataNode::scan`, verbatim: per-entry
/// `Tensor::sq_distance`, full sort with the id tie-break, truncate.
fn reference_scan(entries: &[(VideoId, Tensor)], q: &Tensor, m: usize) -> Vec<ScoredId> {
    let mut scored: Vec<ScoredId> = entries
        .iter()
        .map(|(id, feat)| ScoredId { id: *id, distance: feat.sq_distance(q).unwrap() })
        .collect();
    scored.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| (a.id.class, a.id.instance).cmp(&(b.id.class, b.id.instance)))
    });
    scored.truncate(m);
    scored
}

check! {
    #![config(config())]

    /// Exact mode must reproduce the seed scan bit for bit: same ids in
    /// the same order, and distances equal at the representation level
    /// (`to_bits`), not merely approximately.
    fn exact_mode_is_bit_identical_to_seed_scan(
        seed in 0u64..1_000_000,
        n in 1usize..120,
        dim in 1usize..12,
        m in 1usize..20,
    ) {
        let entries = gallery(seed, n, dim);
        let q = query(seed, dim);
        let node = DataNode::new("p", entries.clone());
        let got = node.query(&q, m).unwrap();
        let want = reference_scan(&entries, &q, m);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(g.distance.to_bits(), w.distance.to_bits());
        }
    }

    /// Probing every list makes IVF exhaustive: the candidate set is the
    /// whole shard, so results must equal exact mode exactly (same total
    /// order, same distances).
    fn full_probe_ivf_equals_exact(
        seed in 0u64..1_000_000,
        n in 1usize..100,
        dim in 1usize..10,
        nlist in 1usize..12,
    ) {
        let m = 1 + (seed % 16) as usize;
        let entries = gallery(seed, n, dim);
        let q = query(seed, dim);
        let exact = DataNode::new("e", entries.clone());
        let ivf = DataNode::with_index_mode(
            "i", entries, IndexMode::ivf(nlist, nlist), shard_seed(seed as usize),
        ).unwrap();
        prop_assert_eq!(ivf.query(&q, m).unwrap(), exact.query(&q, m).unwrap());
    }

    /// Widening the probe never hurts: the candidate set at `nprobe+1`
    /// is a superset of the set at `nprobe`, so recall@m against the
    /// exact answer is monotone non-decreasing, ending at 1 when every
    /// list is probed.
    fn recall_is_monotone_in_nprobe(
        seed in 0u64..1_000_000,
        n in 8usize..100,
        dim in 1usize..8,
        nlist in 2usize..10,
    ) {
        let m = 1 + (seed % 12) as usize;
        let entries = gallery(seed, n, dim);
        let q = query(seed, dim);
        let exact_ids: Vec<VideoId> = reference_scan(&entries, &q, m)
            .into_iter().map(|s| s.id).collect();
        let mut last = 0.0f32;
        for nprobe in 1..=nlist {
            let node = DataNode::with_index_mode(
                "i", entries.clone(), IndexMode::ivf(nlist, nprobe), shard_seed(3),
            ).unwrap();
            let approx_ids: Vec<VideoId> =
                node.query(&q, m).unwrap().into_iter().map(|s| s.id).collect();
            let r = recall_at_m(&approx_ids, &exact_ids);
            prop_assert!(
                r >= last,
                "recall dropped from {} to {} at nprobe {}", last, r, nprobe
            );
            last = r;
        }
        prop_assert_eq!(last, 1.0);
    }

    /// Probing every list with a full-depth rerank tail makes PQ
    /// exhaustive *and* exact: every row is a candidate, the tail
    /// rescores them all from the f32 matrix, so results must equal
    /// exact mode bit for bit regardless of codebook shape.
    fn pq_full_probe_full_rerank_equals_exact(
        seed in 0u64..1_000_000,
        n in 1usize..80,
        dsub in 1usize..5,
        m_sub in 1usize..5,
        nlist in 1usize..10,
    ) {
        let dim = dsub * m_sub;
        let m = 1 + (seed % 16) as usize;
        let nbits = 1 + (seed % 8) as u32;
        let entries = gallery(seed, n, dim);
        let q = query(seed, dim);
        let exact = DataNode::new("e", entries.clone());
        let pq = DataNode::with_index_mode(
            "p", entries, IndexMode::pq(nlist, nlist, m_sub, nbits, n),
            shard_seed(seed as usize),
        ).unwrap();
        let got = pq.query(&q, m).unwrap();
        let want = exact.query(&q, m).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(g.distance.to_bits(), w.distance.to_bits());
        }
    }

    /// The same exhaustive-equivalence contract for SQ8: full probe plus
    /// a rerank tail deep enough to rescore every candidate reproduces
    /// the exact scan at the representation level.
    fn sq8_full_probe_full_rerank_equals_exact(
        seed in 0u64..1_000_000,
        n in 1usize..100,
        dim in 1usize..12,
        nlist in 1usize..10,
    ) {
        let m = 1 + (seed % 16) as usize;
        let entries = gallery(seed, n, dim);
        let q = query(seed, dim);
        let exact = DataNode::new("e", entries.clone());
        let sq8 = DataNode::with_index_mode(
            "s", entries, IndexMode::sq8(nlist, nlist, n), shard_seed(seed as usize),
        ).unwrap();
        let got = sq8.query(&q, m).unwrap();
        let want = exact.query(&q, m).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(g.distance.to_bits(), w.distance.to_bits());
        }
    }

    /// Widening the probe never hurts PQ *when the rerank tail rescores
    /// every candidate exactly*: the candidate set at `nprobe+1` is a
    /// superset, and exact rescoring returns its true top-m, so recall
    /// against the exact answer is monotone and ends at 1. (Without the
    /// full-depth tail this is false — ADC ordering can demote a true
    /// neighbour behind a quantization artifact.)
    fn pq_full_rerank_recall_monotone_in_nprobe(
        seed in 0u64..1_000_000,
        n in 8usize..80,
        dsub in 1usize..4,
        m_sub in 1usize..4,
        nlist in 2usize..8,
    ) {
        let dim = dsub * m_sub;
        let m = 1 + (seed % 12) as usize;
        let entries = gallery(seed, n, dim);
        let q = query(seed, dim);
        let exact_ids: Vec<VideoId> = reference_scan(&entries, &q, m)
            .into_iter().map(|s| s.id).collect();
        let mut last = 0.0f32;
        for nprobe in 1..=nlist {
            let node = DataNode::with_index_mode(
                "p", entries.clone(), IndexMode::pq(nlist, nprobe, m_sub, 8, n),
                shard_seed(3),
            ).unwrap();
            let approx_ids: Vec<VideoId> =
                node.query(&q, m).unwrap().into_iter().map(|s| s.id).collect();
            let r = recall_at_m(&approx_ids, &exact_ids);
            prop_assert!(
                r >= last,
                "pq recall dropped from {} to {} at nprobe {}", last, r, nprobe
            );
            last = r;
        }
        prop_assert_eq!(last, 1.0);
    }

    /// The SQ8 affine quantizer's error bound: every decoded residual
    /// dimension sits within half a quantization step of the original
    /// (plus float slack), so decoded rows are uniformly close to the
    /// f32 matrix.
    fn sq8_decode_error_is_bounded(
        seed in 0u64..1_000_000,
        n in 1usize..80,
        dim in 1usize..10,
        nlist in 1usize..8,
    ) {
        let entries = gallery(seed, n, dim);
        let index = ShardIndex::build(
            &entries, IndexMode::sq8(nlist, 1, 0), shard_seed(seed as usize),
        ).unwrap();
        let (_, steps) = index.sq8_params().unwrap();
        let steps = steps.to_vec();
        for (row, (_, feat)) in entries.iter().enumerate() {
            let decoded = index.decode_row(row);
            for ((&x, &y), &step) in feat.as_slice().iter().zip(&decoded).zip(&steps) {
                let bound = step * 0.5001 + 1e-5;
                prop_assert!(
                    (x - y).abs() <= bound,
                    "row {} decode error {} exceeds bound {} (step {})",
                    row, (x - y).abs(), bound, step
                );
            }
        }
    }

    /// `DUOINDX3` round-trip determinism: serializing a system, loading
    /// it, and serializing again must produce byte-identical images for
    /// every index mode — the loaded system reconstructs exactly the
    /// trained structures (codebooks, coarse lists, packed codes, epoch),
    /// never retrains.
    fn duoindx3_save_load_save_is_byte_identical(
        seed in 0u64..1_000_000,
        n in 1usize..50,
        dsub in 1usize..4,
        m_sub in 1usize..4,
        nodes in 1usize..4,
    ) {
        let dim = dsub * m_sub;
        let mode = match seed % 4 {
            0 => IndexMode::Exact,
            1 => IndexMode::ivf(4, 2),
            2 => IndexMode::pq(4, 2, m_sub, 8, 8),
            _ => IndexMode::sq8(4, 2, 8),
        };
        let entries = gallery(seed ^ 0xD15C, n, dim);
        let snapshot = GalleryIndex::with_mode(entries, mode);
        let backbone = || {
            let mut rng = Rng64::new(9);
            Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap()
        };
        let sys = RetrievalSystem::from_index(
            backbone(),
            &snapshot,
            RetrievalConfig { m: 3, nodes, threaded: false, index: mode },
        ).unwrap();
        let (_, bytes) = GalleryIndex::to_v3_bytes(&sys).unwrap();
        let loaded = RetrievalSystem::from_v3_bytes(
            backbone(), &bytes, RetrievalConfig::default(),
        ).unwrap();
        let (_, bytes2) = GalleryIndex::to_v3_bytes(&loaded).unwrap();
        prop_assert_eq!(bytes, bytes2);
    }
}
