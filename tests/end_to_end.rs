//! Cross-crate integration tests: the full attack pipeline against a live
//! victim retrieval service, at tiny scale.

use duo::prelude::*;

fn victim_world(seed: u64) -> (BlackBox, SyntheticDataset) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), seed, 3, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let victim = Backbone::new(Architecture::I3d, BackboneConfig::tiny(), &mut rng)
        .expect("tiny backbone builds");
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
    )
    .expect("retrieval system builds");
    (BlackBox::new(system), ds)
}

fn quick_duo(spec: ClipSpec) -> DuoConfig {
    let mut cfg = DuoConfig::for_spec(spec);
    cfg.transfer.outer_iters = 1;
    cfg.transfer.theta_steps = 4;
    cfg.transfer.admm_iters = 15;
    cfg.query.iter_num_q = 15;
    cfg.iter_num_h = 1;
    cfg
}

#[test]
fn full_pipeline_produces_valid_adversarial_video() {
    let (mut bb, ds) = victim_world(301);
    let mut rng = Rng64::new(302);
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 8).copied().collect();
    let (surrogate, steal) =
        steal_surrogate(&mut bb, &ds, &probes, StealConfig::quick(), &mut rng).unwrap();
    assert!(steal.queries > 0);

    let v = ds.video(VideoId { class: 0, instance: 0 });
    let v_t = ds.video(VideoId { class: 6, instance: 0 });
    let mut attack = DuoAttack::new(surrogate, quick_duo(ClipSpec::tiny()));
    let (outcome, report) = attack.run_and_evaluate(&mut bb, &v, &v_t, &mut rng).unwrap();

    // Validity invariants from the threat model.
    assert!(outcome.adversarial.tensor().min() >= 0.0);
    assert!(outcome.adversarial.tensor().max() <= 255.0);
    assert!(outcome.perturbation.linf_norm() <= 30.0 + 1e-3, "τ bound violated");
    assert!(outcome.spa() > 0 && outcome.spa() < v.tensor().len() / 10, "must be sparse");
    assert!((0.0..=100.0).contains(&report.ap_at_m));
    assert_eq!(report.spa, outcome.spa());
    assert!(outcome.queries > 0, "black-box attack must consume queries");
}

#[test]
fn duo_is_over_10x_sparser_than_timi() {
    let (mut bb, ds) = victim_world(311);
    let mut rng = Rng64::new(312);
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 8).copied().collect();
    let (surrogate, _) =
        steal_surrogate(&mut bb, &ds, &probes, StealConfig::quick(), &mut rng).unwrap();
    let v = ds.video(VideoId { class: 1, instance: 0 });
    let v_t = ds.video(VideoId { class: 7, instance: 0 });

    let mut attack = DuoAttack::new(surrogate, quick_duo(ClipSpec::tiny()));
    let duo_outcome = attack.run(&mut bb, &v, &v_t, &mut rng).unwrap();
    let mut surrogate = attack.into_surrogate();
    let timi_outcome =
        TimiAttack::new(&mut surrogate, TimiConfig::default()).run(&v, &v_t).unwrap();

    // The headline stealthiness claim, scaled: DUO perturbs a small
    // fraction of what TIMI perturbs (paper: >100x at full resolution).
    assert!(
        timi_outcome.spa() >= 10 * duo_outcome.spa().max(1),
        "TIMI Spa {} should dwarf DUO Spa {}",
        timi_outcome.spa(),
        duo_outcome.spa()
    );
    assert!(timi_outcome.pscore() > duo_outcome.pscore());
}

#[test]
fn query_budget_is_respected_end_to_end() {
    let (bb, ds) = victim_world(321);
    let mut bb = BlackBox::with_budget(bb.into_inner(), 25);
    let mut rng = Rng64::new(322);
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 8).copied().collect();
    let steal_cfg = StealConfig { rounds: 1, ..StealConfig::quick() };
    let (surrogate, _) = steal_surrogate(&mut bb, &ds, &probes, steal_cfg, &mut rng).unwrap();
    let v = ds.video(VideoId { class: 2, instance: 0 });
    let v_t = ds.video(VideoId { class: 5, instance: 0 });
    let mut cfg = quick_duo(ClipSpec::tiny());
    cfg.query.iter_num_q = 500;
    let mut attack = DuoAttack::new(surrogate, cfg);
    let outcome = attack.run(&mut bb, &v, &v_t, &mut rng).unwrap();
    assert!(bb.queries_used() <= 25, "budget exceeded: {}", bb.queries_used());
    assert!(outcome.queries <= 25);
}

#[test]
fn attack_objective_is_monotone_across_rounds() {
    let (mut bb, ds) = victim_world(331);
    let mut rng = Rng64::new(332);
    let probes: Vec<VideoId> = ds.test().iter().filter(|id| id.class < 8).copied().collect();
    let (surrogate, _) =
        steal_surrogate(&mut bb, &ds, &probes, StealConfig::quick(), &mut rng).unwrap();
    let v = ds.video(VideoId { class: 3, instance: 0 });
    let v_t = ds.video(VideoId { class: 4, instance: 0 });
    let mut cfg = quick_duo(ClipSpec::tiny());
    cfg.iter_num_h = 2;
    let mut attack = DuoAttack::new(surrogate, cfg);
    let outcome = attack.run(&mut bb, &v, &v_t, &mut rng).unwrap();
    // Within each SparseQuery round the objective is greedy-monotone;
    // across rounds it restarts from the new transfer point, so only
    // check within contiguous segments (detected by non-increase).
    let mut violations = 0;
    for w in outcome.loss_trajectory.windows(2) {
        if w[1] > w[0] + 1e-5 {
            violations += 1;
        }
    }
    // At most iter_num_h − 1 restarts may increase the objective.
    assert!(violations <= 1, "too many objective increases: {violations}");
}

#[test]
fn baselines_and_duo_share_the_same_evaluation_contract() {
    let (mut bb, ds) = victim_world(341);
    let mut rng = Rng64::new(342);
    let v = ds.video(VideoId { class: 0, instance: 0 });
    let v_t = ds.video(VideoId { class: 5, instance: 0 });
    let vanilla = VanillaAttack::new(VanillaConfig { k: 200, n: 3, tau: 30.0, iter_num_q: 5 })
        .run(&mut bb, &v, &v_t, &mut rng)
        .unwrap();
    let heu = HeuSimAttack::new(HeuConfig { k: 200, n: 3, iters: 5, ..HeuConfig::default() })
        .run(&mut bb, &v, &v_t, &mut rng)
        .unwrap();
    for outcome in [&vanilla, &heu] {
        let report = evaluate_outcome(&mut bb, outcome, &v_t).unwrap();
        assert!((0.0..=100.0).contains(&report.ap_at_m));
        assert!(report.pscore >= 0.0);
        assert!(outcome.perturbation.linf_norm() <= 30.0 + 1e-3);
    }
}
