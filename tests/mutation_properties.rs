//! Property-based coverage of live gallery mutation: epoch transactions
//! racing chaotic queries, and rebalances racing breaker flaps.
//!
//! This suite persists failing case seeds to
//! `tests/mutation_properties.regressions` (see [`duo_check`]); past
//! failures replay before fresh generation.

use duo::prelude::*;
use duo_check::{check, prop_assert, prop_assert_eq, Config};

fn config() -> Config {
    Config::default().with_cases(24).with_regressions(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/mutation_properties.regressions"
    ))
}

/// A 3-shard system whose nodes flap open→half-open→closed on a seeded
/// schedule, with breakers armed — the PR 3 chaos stack — plus enough
/// gallery to make rebalances move real rows.
fn chaotic_system(seed: u64, threaded: bool) -> (RetrievalSystem, SyntheticDataset) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Hmdb51Like, ClipSpec::tiny(), seed, 2, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 9).copied().collect();
    let victim = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let mut system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 3, threaded, ..Default::default() },
    )
    .unwrap();
    for (i, node) in system.nodes().iter().enumerate() {
        node.set_fault_plan(Some(
            FaultPlan::transient(seed ^ (0xEB0C + i as u64), 0.25)
                .with_latency(300, 250, 0.1, 8_000)
                .with_flap(2 + 2 * i as u64, 6 + 2 * i as u64),
        ));
    }
    system.set_resilience(ResilienceConfig::hardened(seed ^ 0xEB0C0FF));
    (system, ds)
}

/// Every id in every shard, sorted — the row-conservation ledger.
fn all_rows(system: &RetrievalSystem) -> Vec<VideoId> {
    let mut ids: Vec<VideoId> =
        system.nodes().iter().flat_map(|n| n.snapshot().ids().to_vec()).collect();
    ids.sort_by_key(|id| (id.class, id.instance));
    ids
}

check! {
    #![config(config())]

    /// A node flapping open→half-open→closed while a rebalance is in
    /// flight neither loses rows nor lets a query observe an unpublished
    /// epoch: the id multiset is conserved move-for-move, every ranked
    /// list is drawn from ids that were published when the query was
    /// admitted, and each query's served epoch sits inside the
    /// [admission, completion] epoch window.
    fn flap_during_rebalance_conserves_rows_and_epochs(
        seed in 0u64..100_000,
        unbalance in 1usize..5,
        queries in 4usize..12,
    ) {
        let (system, ds) = chaotic_system(seed, false);
        let before = all_rows(&system);

        // Unbalance shard 0 so the rebalance has rows to move, then
        // prepare query features up front (embedding is fault-free).
        let victims: Vec<VideoId> =
            system.nodes()[0].snapshot().ids().iter().copied().take(unbalance).collect();
        let mut batch = MutationBatch::new();
        for &id in &victims {
            batch.push(Mutation::Delete { id });
        }
        let t = system.apply(&batch).unwrap();
        prop_assert_eq!(t.deleted as usize, victims.len());
        let surviving = all_rows(&system);
        let probes: Vec<Tensor> = ds
            .test()
            .iter()
            .filter(|id| id.class < 9)
            .take(queries)
            .map(|&id| system.embed(&ds.video(id)).unwrap())
            .collect();

        // Race the rebalance against chaotic queries. The fault plans
        // count per-node queries, so the flap windows open and close
        // *while* the writer is staging and publishing.
        let outcomes = std::thread::scope(|scope| {
            let writer = scope.spawn(|| system.rebalance().unwrap());
            let mut outcomes = Vec::new();
            for feature in &probes {
                let admitted = system.current_epoch();
                let got = system.retrieve_resilient(feature).unwrap();
                let completed = system.current_epoch();
                outcomes.push((admitted, got, completed));
            }
            (writer.join().unwrap(), outcomes)
        });
        let (transition, outcomes) = outcomes;
        prop_assert!(transition.rows_moved > 0, "unbalanced gallery must move rows");

        // Row conservation: nothing lost, nothing double-counted, exactly
        // the pre-rebalance survivors.
        prop_assert_eq!(all_rows(&system), surviving.clone());
        prop_assert_eq!(surviving.len(), before.len() - victims.len());

        // Epoch hygiene: a query never reports an epoch that was not yet
        // published when it completed, never one older than its admission
        // cut, and never returns an id outside the published gallery.
        for (admitted, got, completed) in &outcomes {
            prop_assert!(got.epoch >= *admitted, "epoch ran backwards");
            prop_assert!(got.epoch <= *completed, "unpublished epoch observed");
            for id in &got.ids {
                prop_assert!(surviving.contains(id), "query leaked an unpublished row");
                prop_assert!(!victims.contains(id), "deleted row resurfaced");
            }
        }

        // The flap schedule must have actually fired for the race to
        // mean anything (transients/timeouts/breaker activity count too).
        let touched: u64 = outcomes
            .iter()
            .map(|(_, got, _)| {
                got.telemetry.transient_faults
                    + got.telemetry.node_timeouts
                    + got.telemetry.breaker_skips
                    + got.telemetry.node_failures.iter().sum::<u64>()
            })
            .sum();
        prop_assert!(touched > 0, "chaos schedule never fired; weaken the seed filter");
    }

    /// Mutation + rebalance + chaotic queries replay bit-identically when
    /// run serially with the same seed: the epoch trail, every receipt,
    /// and every ranked list are pure functions of the seed.
    fn serial_mutate_query_trace_replays_bit_identically(
        seed in 0u64..100_000,
        inserts in 1usize..4,
    ) {
        let run = |threaded: bool| {
            let (system, ds) = chaotic_system(seed, threaded);
            let dim = system.nodes()[0].snapshot().dim();
            let mut receipts = Vec::new();
            let mut lists = Vec::new();
            let probes: Vec<Tensor> = ds
                .test()
                .iter()
                .filter(|id| id.class < 9)
                .take(4)
                .map(|&id| system.embed(&ds.video(id)).unwrap())
                .collect();
            for k in 0..inserts {
                let id = VideoId { class: 200 + k as u32, instance: 0 };
                let feat = Tensor::from_vec(vec![k as f32 * 0.25; dim], &[dim]).unwrap();
                receipts.push(system.insert(id, feat).unwrap());
                for p in &probes {
                    lists.push(system.retrieve_resilient(p).unwrap());
                }
            }
            receipts.push(system.rebalance().unwrap());
            for p in &probes {
                lists.push(system.retrieve_resilient(p).unwrap());
            }
            (receipts, lists, system.current_epoch(), system.mutation_stats())
        };
        let a = run(false);
        let b = run(false);
        prop_assert_eq!(&a, &b, "same-seed serial replay diverged");
        let c = run(true);
        prop_assert_eq!(&a, &c, "threaded fan-out changed the trace");
    }
}
