//! Integration tests for the defense stack against real attack outputs
//! and, for the streaming blue-team stage, end to end through `duo-serve`.

use duo::prelude::*;
use duo::serve::ServeError;
use duo_tensor::RandomSource;
use std::time::Duration;

fn trained_world(seed: u64) -> (RetrievalSystem, SyntheticDataset) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Ucf101Like, ClipSpec::tiny(), seed, 3, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let victim = Backbone::new(Architecture::Tpn, BackboneConfig::tiny(), &mut rng).unwrap();
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
    )
    .unwrap();
    (system, ds)
}

#[test]
fn calibrated_defenses_keep_clean_fpr_low() {
    let (mut system, ds) = trained_world(401);
    let clean: Vec<Video> = (0..8).map(|c| ds.video(VideoId { class: c, instance: 0 })).collect();
    let held_out: Vec<Video> =
        (0..8).map(|c| ds.video(VideoId { class: c, instance: 1 })).collect();
    for defense in [
        Box::new(FeatureSqueezing::default()) as Box<dyn Defense>,
        Box::new(Noise2Self::default()),
    ] {
        let harness =
            DetectionHarness::calibrate(&mut system, defense.as_ref(), &clean, 0.15).unwrap();
        let mut flagged = 0;
        for v in &held_out {
            if harness.is_flagged(&mut system, defense.as_ref(), v).unwrap() {
                flagged += 1;
            }
        }
        assert!(
            flagged <= 4,
            "{}: too many clean held-out videos flagged ({flagged}/8)",
            defense.name()
        );
    }
}

#[test]
fn detection_scores_separate_heavy_noise_from_clean() {
    // The paper's Table X shows detection ordering is attack- and
    // defense-dependent (sparse DUO is sometimes flagged more than dense
    // TIMI under Noise2Self and vice versa under squeezing), so the
    // robust integration claim is: the divergence score distinguishes
    // heavily corrupted queries from clean ones, and detection rates are
    // well-formed, for real attack outputs.
    let (mut system, ds) = trained_world(411);
    let mut rng = Rng64::new(412);
    let mut surrogate = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();

    let mut attacked = Vec::new();
    let mut noisy = Vec::new();
    for c in 0..4u32 {
        let v = ds.video(VideoId { class: c, instance: 0 });
        let v_t = ds.video(VideoId { class: c + 4, instance: 0 });
        let cfg = TimiConfig { epsilon: 20.0, ..TimiConfig::default() };
        attacked.push(TimiAttack::new(&mut surrogate, cfg).run(&v, &v_t).unwrap().adversarial);
        let mut n = v.clone();
        for x in n.tensor_mut().as_mut_slice() {
            *x = (*x + 45.0 * rng.normal()).clamp(0.0, 255.0);
        }
        noisy.push(n);
    }
    let clean: Vec<Video> = (0..8).map(|c| ds.video(VideoId { class: c, instance: 1 })).collect();
    let defense = FeatureSqueezing::default();
    let mean = |system: &mut RetrievalSystem, vids: &[Video]| -> f32 {
        vids.iter()
            .map(|v| DetectionHarness::score(system, &defense, v).unwrap())
            .sum::<f32>()
            / vids.len() as f32
    };
    let clean_mean = mean(&mut system, &clean);
    let noisy_mean = mean(&mut system, &noisy);
    assert!(
        noisy_mean >= clean_mean,
        "heavy noise should diverge at least as much as clean queries: {noisy_mean} vs {clean_mean}"
    );
    let mut harness = DetectionHarness::calibrate(&mut system, &defense, &clean, 0.1).unwrap();
    for batch in [&attacked, &noisy] {
        let rate = harness.detection_rate(&mut system, &defense, batch).unwrap();
        assert!((0.0..=100.0).contains(&rate));
    }
}

/// Starts a defended service over the trained world.
fn defended_service(seed: u64, purify: Purify) -> (RetrievalService, SyntheticDataset) {
    let (system, ds) = trained_world(seed);
    let config = ServeConfig {
        workers: 2,
        defense: Some(DefenseConfig { stream: StreamConfig::default(), purify }),
        ..ServeConfig::default()
    };
    (RetrievalService::start(system, config).unwrap(), ds)
}

/// `base` with a few seeded pixels nudged — one optimizer candidate.
fn near_dup(base: &Video, rng: &mut Rng64) -> Video {
    let mut v = base.clone();
    let px = v.tensor_mut().as_mut_slice();
    for _ in 0..150 {
        let i = (rng.next_u64() % px.len() as u64) as usize;
        px[i] = (px[i] + 20.0 * (2.0 * rng.uniform() - 1.0)).clamp(0.0, 255.0);
    }
    v
}

#[test]
fn purification_latency_is_charged_against_the_deadline() {
    // Purification runs on the inference path, inside the request's
    // end-to-end deadline. A deadline far below the purify+embed cost
    // must shed the request (refunded, never billed); an ample deadline
    // must serve it through the purifier.
    let (svc, ds) = defended_service(431, Purify::Squeeze(FeatureSqueezing::default()));
    let client = svc.client(None, None);
    let v = ds.video(VideoId { class: 0, instance: 0 });

    let err = client.retrieve_with_deadline(&v, Duration::from_nanos(1)).unwrap_err();
    assert!(
        matches!(err, ServeError::DeadlineExceeded),
        "sub-purification deadline must shed: got {err}"
    );
    let tight = client.stats().unwrap();
    assert_eq!(tight.deadline_misses, 1, "the shed must be recorded as a deadline miss");
    assert_eq!(tight.refunded, tight.deadline_misses, "every shed query must be refunded");
    assert_eq!(
        tight.charged,
        tight.served + tight.failed,
        "ledger drift with defense on: {tight:?}"
    );

    // A distinct clip (not a near-duplicate of the shed one's sketch is
    // fine — the shed attempt is already in the ring) with a generous
    // deadline flows through purification and serves.
    let list = client.retrieve_with_deadline(&ds.video(VideoId { class: 1, instance: 0 }), Duration::from_secs(30)).unwrap();
    assert!(!list.is_empty());
    let ample = client.stats().unwrap();
    assert_eq!(ample.served, 1);
    assert_eq!(ample.refunded, ample.deadline_misses);
    assert_eq!(ample.charged, ample.served + ample.failed, "ledger drift: {ample:?}");

    let service_stats = svc.shutdown();
    assert!(
        service_stats.purified >= service_stats.served,
        "every served request must have passed the purifier: {service_stats}"
    );
}

#[test]
fn benign_lane_stays_clean_while_concurrent_duo_lane_is_flagged() {
    // Per-account detector isolation: an adversarial near-duplicate lane
    // escalates while a concurrently-driven benign lane on the same
    // service accumulates zero flags.
    let (svc, ds) = defended_service(433, Purify::None);
    let red = svc.client(None, None);
    let blue = svc.client(None, None);
    let base = ds.video(VideoId { class: 0, instance: 0 });
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut rng = Rng64::new(434);
            for _ in 0..12 {
                // Throttle/quarantine rejections are the expected
                // escalation for this lane.
                let _ = red.retrieve(&near_dup(&base, &mut rng));
            }
        });
        scope.spawn(|| {
            for c in 0..8u32 {
                blue.retrieve(&ds.video(VideoId { class: c, instance: 1 }))
                    .expect("benign lane must never be rejected");
            }
        });
    });
    let red_stats = red.stats().unwrap();
    let blue_stats = blue.stats().unwrap();
    assert!(
        red_stats.defense_flagged >= 8,
        "near-duplicate lane must be flagged persistently: {red_stats:?}"
    );
    assert!(red.defense_flags().unwrap() >= 8);
    assert_eq!(
        blue_stats.defense_flagged, 0,
        "benign lane must not inherit the red lane's flags: {blue_stats:?}"
    );
    assert_eq!(blue_stats.defense_observed, 8);
    assert_eq!(blue_stats.served, 8, "benign lane must be fully served");
    svc.shutdown();
}

#[test]
fn ensemble_detector_composes_with_served_retrieval_lists() {
    // The offline ensemble detector judges disagreement between a primary
    // retrieval list and its own secondary backbone. Here the primary
    // lists come from a live duo-serve client instead of an in-process
    // RetrievalSystem — the `score_against` composition path.
    let (svc, ds) = defended_service(437, Purify::None);
    let client = svc.client(None, None);
    let mut rng = Rng64::new(438);
    let secondary = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let mut ensemble = EnsembleDetector::build(secondary, &ds, &gallery, 5).unwrap();

    // Calibrate a served-surface threshold: max clean disagreement.
    let mut clean_max = 0.0f32;
    for c in 0..4u32 {
        let v = ds.video(VideoId { class: c, instance: 1 });
        let list = client.retrieve(&v).expect("clean queries serve");
        clean_max = clean_max.max(ensemble.score_against(&list, &v).unwrap());
    }
    ensemble.set_threshold(clean_max);

    for c in 4..8u32 {
        let v = ds.video(VideoId { class: c, instance: 1 });
        let list = client.retrieve(&v).expect("clean queries serve");
        let score = ensemble.score_against(&list, &v).unwrap();
        assert!((0.0..=1.0).contains(&score), "disagreement must be a [0,1] score: {score}");
        assert_eq!(
            ensemble.is_flagged_against(&list, &v).unwrap(),
            score > clean_max,
            "flag decision must follow the served-list score against the threshold"
        );
    }
    svc.shutdown();
}

#[test]
fn defended_queries_still_retrieve_sensibly() {
    // The defense transform must not destroy retrieval for clean queries:
    // the exact gallery copy should still rank first after squeezing.
    let (system, ds) = trained_world(421);
    let v = ds.video(VideoId { class: 0, instance: 0 });
    for defense in [
        Box::new(FeatureSqueezing::default()) as Box<dyn Defense>,
        Box::new(Noise2Self { radius: 1, strength: 0.5 }),
    ] {
        let transformed = defense.transform(&v);
        let list = system.retrieve(&transformed).unwrap();
        assert_eq!(
            list[0].class, 0,
            "{}: top hit should stay in the query's class",
            defense.name()
        );
    }
}
