//! Integration tests for the defense stack against real attack outputs.

use duo::prelude::*;

fn trained_world(seed: u64) -> (RetrievalSystem, SyntheticDataset) {
    let mut rng = Rng64::new(seed);
    let ds = SyntheticDataset::subsampled(DatasetKind::Ucf101Like, ClipSpec::tiny(), seed, 3, 1);
    let gallery: Vec<VideoId> = ds.train().iter().filter(|id| id.class < 8).copied().collect();
    let victim = Backbone::new(Architecture::Tpn, BackboneConfig::tiny(), &mut rng).unwrap();
    let system = RetrievalSystem::build(
        victim,
        &ds,
        &gallery,
        RetrievalConfig { m: 5, nodes: 2, threaded: false, ..Default::default() },
    )
    .unwrap();
    (system, ds)
}

#[test]
fn calibrated_defenses_keep_clean_fpr_low() {
    let (mut system, ds) = trained_world(401);
    let clean: Vec<Video> = (0..8).map(|c| ds.video(VideoId { class: c, instance: 0 })).collect();
    let held_out: Vec<Video> =
        (0..8).map(|c| ds.video(VideoId { class: c, instance: 1 })).collect();
    for defense in [
        Box::new(FeatureSqueezing::default()) as Box<dyn Defense>,
        Box::new(Noise2Self::default()),
    ] {
        let harness =
            DetectionHarness::calibrate(&mut system, defense.as_ref(), &clean, 0.15).unwrap();
        let mut flagged = 0;
        for v in &held_out {
            if harness.is_flagged(&mut system, defense.as_ref(), v).unwrap() {
                flagged += 1;
            }
        }
        assert!(
            flagged <= 4,
            "{}: too many clean held-out videos flagged ({flagged}/8)",
            defense.name()
        );
    }
}

#[test]
fn detection_scores_separate_heavy_noise_from_clean() {
    // The paper's Table X shows detection ordering is attack- and
    // defense-dependent (sparse DUO is sometimes flagged more than dense
    // TIMI under Noise2Self and vice versa under squeezing), so the
    // robust integration claim is: the divergence score distinguishes
    // heavily corrupted queries from clean ones, and detection rates are
    // well-formed, for real attack outputs.
    let (mut system, ds) = trained_world(411);
    let mut rng = Rng64::new(412);
    let mut surrogate = Backbone::new(Architecture::C3d, BackboneConfig::tiny(), &mut rng).unwrap();

    let mut attacked = Vec::new();
    let mut noisy = Vec::new();
    for c in 0..4u32 {
        let v = ds.video(VideoId { class: c, instance: 0 });
        let v_t = ds.video(VideoId { class: c + 4, instance: 0 });
        let cfg = TimiConfig { epsilon: 20.0, ..TimiConfig::default() };
        attacked.push(TimiAttack::new(&mut surrogate, cfg).run(&v, &v_t).unwrap().adversarial);
        let mut n = v.clone();
        for x in n.tensor_mut().as_mut_slice() {
            *x = (*x + 45.0 * rng.normal()).clamp(0.0, 255.0);
        }
        noisy.push(n);
    }
    let clean: Vec<Video> = (0..8).map(|c| ds.video(VideoId { class: c, instance: 1 })).collect();
    let defense = FeatureSqueezing::default();
    let mean = |system: &mut RetrievalSystem, vids: &[Video]| -> f32 {
        vids.iter()
            .map(|v| DetectionHarness::score(system, &defense, v).unwrap())
            .sum::<f32>()
            / vids.len() as f32
    };
    let clean_mean = mean(&mut system, &clean);
    let noisy_mean = mean(&mut system, &noisy);
    assert!(
        noisy_mean >= clean_mean,
        "heavy noise should diverge at least as much as clean queries: {noisy_mean} vs {clean_mean}"
    );
    let mut harness = DetectionHarness::calibrate(&mut system, &defense, &clean, 0.1).unwrap();
    for batch in [&attacked, &noisy] {
        let rate = harness.detection_rate(&mut system, &defense, batch).unwrap();
        assert!((0.0..=100.0).contains(&rate));
    }
}

#[test]
fn defended_queries_still_retrieve_sensibly() {
    // The defense transform must not destroy retrieval for clean queries:
    // the exact gallery copy should still rank first after squeezing.
    let (system, ds) = trained_world(421);
    let v = ds.video(VideoId { class: 0, instance: 0 });
    for defense in [
        Box::new(FeatureSqueezing::default()) as Box<dyn Defense>,
        Box::new(Noise2Self { radius: 1, strength: 0.5 }),
    ] {
        let transformed = defense.transform(&v);
        let list = system.retrieve(&transformed).unwrap();
        assert_eq!(
            list[0].class, 0,
            "{}: top hit should stay in the query's class",
            defense.name()
        );
    }
}
