#!/usr/bin/env bash
# Tier-1 verification: the workspace must build and test fully offline —
# no registry, no network, no vendored crates. See README.md ("Hermetic
# build") for the policy this enforces.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Serving-layer smoke: the demo stands up a live duo-serve service
# (concurrent clients, micro-batching, budget + rate-limit rejections)
# and must exit cleanly.
cargo run --release --offline --example serve_demo

# Chaos smoke: the full steal + attack pipeline through the service under
# a seeded fault schedule. The binary itself asserts determinism and
# exact query-budget accounting (charged == served + failed) and exits
# nonzero on any drift.
DUO_SCALE=smoke cargo run --release --offline -p duo-experiments --bin chaos_serve

# Mutation smoke: a live service absorbing inserts, deletes, and a
# mid-flap rebalance while the fault schedule rages. The binary asserts
# same-seed bit-identical replay of the whole mutate+query+fault trace
# and zero budget drift (charged == served + failed, refunds exact).
DUO_SCALE=smoke cargo run --release --offline -p duo-experiments --bin mutate_serve

# Documentation gate: every public item documented, every doc-example
# compiles. Warnings are errors so rustdoc regressions fail tier-1.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Index smoke: the shard-index bench at tiny scale — exercises the seed
# scan vs SoA vs IVF vs compressed (PQ ADC, SQ8) paths end to end,
# asserts the audited recall floor on the compressed entries, and writes
# BENCH_index.json (timed rows plus bytes-per-vector and recall-loss
# pseudo-metric rows) for the threshold gate below.
DUO_SCALE=smoke cargo bench --offline -p duo-bench --bench index

# Index sweep smoke: asserts the equivalence contracts (IVF full probe
# == exact; PQ/SQ8 full probe + full-depth rerank bit-identical to
# exact), that recall audits fire on live IVF traffic, and that the
# per-mode breakdown attributes PQ audits to the pq bucket with live
# code-byte counters.
DUO_SCALE=smoke cargo run --release --offline -p duo-experiments --bin index_sweep

# Kernel + serving + epoch bench smokes: the GEMM bench asserts
# bit-identity on every variant (reference, serial, each thread count,
# fused bias) before timing, the mutate bench asserts the epoch path
# ranks identically to the frozen-snapshot baseline, and all three write
# their BENCH_*.json artifacts at the repo root.
DUO_SCALE=smoke cargo bench --offline -p duo-bench --bench gemm
DUO_SCALE=smoke cargo bench --offline -p duo-bench --bench serve
DUO_SCALE=smoke cargo bench --offline -p duo-bench --bench mutate

# Campaign smoke: the full attacker zoo (DUO, Vanilla, TIMI, HEU-Nes,
# HEU-Sim, sparse-RL, feature-map) as 8 concurrent metered clients
# against a live duo-serve instance. The binary asserts fleet-wide exact
# budget accounting and bit-identical seeded replay of the leaderboard,
# and writes BENCH_campaign.json for the gate below.
DUO_SCALE=smoke cargo run --release --offline -p duo-experiments --bin campaign

# Red-vs-blue smoke: the attacker zoo against the *defended* service —
# streaming detection at admission, squeeze purification on the
# inference path, benign control lanes, and a fault-injected accounting
# phase. The binary itself asserts two same-seed defended runs produce a
# byte-identical artifact before writing BENCH_defense.json; running it
# twice here proves the whole experiment (not just the in-process
# replay) is deterministic end to end.
DUO_SCALE=smoke cargo run --release --offline -p duo-experiments --bin red_vs_blue
cp BENCH_defense.json BENCH_defense.json.replay
DUO_SCALE=smoke cargo run --release --offline -p duo-experiments --bin red_vs_blue
cmp BENCH_defense.json BENCH_defense.json.replay \
  || { echo "red_vs_blue: same-seed reruns diverged" >&2; exit 1; }
rm -f BENCH_defense.json.replay

# Artifact + threshold gate: every emitted file (gemm, serve, campaign,
# mutate, index, defense) must parse and carry every required field (name,
# samples, min/median/p95/mean/trimmed_mean/max), and the smoke-scale
# rules in BENCH_thresholds.txt must hold on the trimmed means — a
# kernel perf regression, a broken attack contract (zero-query family
# charging queries, sparse family going dense), or a compressed-index
# contract break (PQ/SQ8 slower than the wall, code footprint above the
# ratio, audited recall loss over 0.05) fails tier-1 here, not just a
# schema break. (Full-scale rules are skipped at smoke scale; they gate
# the committed BENCH_*.json artifacts instead.)
cargo run --release --offline -p duo-bench --bin bench_check
